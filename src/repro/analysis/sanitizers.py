"""Runtime sanitizers: dynamic cross-checks of the simulation invariants.

The static rules (:mod:`repro.analysis.rules`) catch what syntax can
see; the sanitizers catch what only execution can.  When a sanitizer is
installed (the test suite installs one around every test via an autouse
conftest fixture), the accounting surfaces consult it on their hot
paths:

* :class:`~repro.pdm.disk.SimDisk` reports every charge —
  ``SAN-DISK-EMPTY`` (degenerate zero-payload accounting) and
  ``SAN-DISK-DEAD-WRITE`` (a write charged to a dead node's disk: node
  isolation — a crashed node's disk stays *readable* for salvage, but
  nothing may write through a dead node);
* :class:`~repro.pdm.blockfile.BlockFile` brackets each block I/O —
  ``SAN-DISK-UNACCOUNTED`` (a block moved without exactly one counter
  increment on the owning disk, the "every block charged exactly once"
  invariant that caching/subclassing PRs are most likely to break);
* :class:`~repro.cluster.network.Network` reports every transfer —
  ``SAN-NET-DEAD-DST`` (message delivered to a dead node) and
  ``SAN-NET-TORN`` (message size not a whole number of items when the
  call site declares the item width — paper step 4 moves whole items in
  block-multiple messages);
* :class:`~repro.pdm.memory.MemoryManager` registers itself at
  construction — ``SAN-MEM-LEAK`` (reservations still pinned when the
  test ends: a buffer acquired and never released means the M budget
  drifts and later phases under-report pressure).

Sanitizers are strictly opt-in and nestable (a stack); with none
installed every hook is a single ``is None`` test, so the fault-free
cost model is untouched.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # import only for annotations: avoid runtime cycles
    from repro.cluster.network import Network
    from repro.cluster.node import SimNode
    from repro.pdm.disk import SimDisk
    from repro.pdm.memory import MemoryManager


class SanitizerError(AssertionError):
    """An invariant violation detected at runtime.

    ``check`` is the stable machine-readable check id (``SAN-...``);
    the message carries the forensic detail.  Subclasses AssertionError
    so a violation reads as a failed invariant, not an operational
    error, and is never swallowed by ``except Exception`` recovery
    paths tested elsewhere.
    """

    def __init__(self, check: str, message: str) -> None:
        super().__init__(f"[{check}] {message}")
        self.check = check


@dataclass(frozen=True)
class SanitizerConfig:
    """Which dynamic checks are armed (all on by default)."""

    empty_io: bool = True
    dead_disk_write: bool = True
    unaccounted_block_io: bool = True
    dead_network_dst: bool = True
    torn_messages: bool = True
    memory_leaks: bool = True


@dataclass
class SanitizerStats:
    """How many times each hook ran (visibility that checks are live)."""

    disk_charges: int = 0
    block_ios: int = 0
    transfers: int = 0
    managers_tracked: int = 0
    violations: int = 0
    by_check: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class SanitizerTrip:
    """One recorded invariant violation (kept even after the raise).

    Consumers that swallow or translate the :class:`SanitizerError`
    (the scenario fuzzer classifying a run, a retry layer unwinding a
    step) can still read the machine-readable trip record off
    :attr:`RuntimeSanitizer.trips` afterwards.
    """

    check: str
    message: str


class RuntimeSanitizer:
    """One installed set of dynamic invariant checks."""

    def __init__(self, config: Optional[SanitizerConfig] = None) -> None:
        self.config = config if config is not None else SanitizerConfig()
        self.stats = SanitizerStats()
        #: Every violation this sanitizer raised, in firing order.
        self.trips: list[SanitizerTrip] = []
        self._managers: list[weakref.ref["MemoryManager"]] = []

    def _violation(self, check: str, message: str) -> None:
        self.stats.violations += 1
        self.stats.by_check[check] = self.stats.by_check.get(check, 0) + 1
        self.trips.append(SanitizerTrip(check, message))
        raise SanitizerError(check, message)

    # -- SimDisk ----------------------------------------------------------

    def on_disk_charge(
        self, disk: "SimDisk", op: str, n_items: int, itemsize: int
    ) -> None:
        """Called by :meth:`SimDisk.charge_read` / ``charge_write``."""
        self.stats.disk_charges += 1
        if self.config.empty_io and (n_items < 1 or itemsize < 1):
            self._violation(
                "SAN-DISK-EMPTY",
                f"disk {disk.name!r} charged a degenerate {op} of "
                f"{n_items} item(s) x {itemsize} byte(s); empty I/O must "
                "not be accounted",
            )
        owner = getattr(disk, "owner", None)
        if (
            self.config.dead_disk_write
            and op == "write"
            and owner is not None
            and not owner.alive
        ):
            self._violation(
                "SAN-DISK-DEAD-WRITE",
                f"write charged to disk {disk.name!r} of dead node "
                f"{owner.name!r} (died at {owner.failed_at!r}); a crashed "
                "node's disk is salvage-readable but never writable",
            )

    @contextmanager
    def expect_block_charge(self, disk: "SimDisk", op: str) -> Iterator[None]:
        """Bracket one BlockFile block I/O: exactly one counter increment.

        Guards the "every block read/write charged exactly once"
        invariant against future caching or subclass shortcuts: the
        block move must land in the owning disk's IOStats exactly once.
        """
        self.stats.block_ios += 1
        stats = disk.stats
        before = stats.blocks_read if op == "read" else stats.blocks_written
        yield
        after = stats.blocks_read if op == "read" else stats.blocks_written
        if self.config.unaccounted_block_io and after - before != 1:
            self._violation(
                "SAN-DISK-UNACCOUNTED",
                f"block {op} on disk {disk.name!r} incremented the "
                f"{op} counter by {after - before} instead of exactly 1; "
                "every block I/O must be charged exactly once",
            )

    # -- Network ----------------------------------------------------------

    def on_transfer(
        self,
        network: "Network",
        src: "SimNode",
        dst: "SimNode",
        nbytes: int,
        item_bytes: Optional[int],
    ) -> None:
        """Called by :meth:`Network.transfer` before the charge."""
        self.stats.transfers += 1
        if self.config.dead_network_dst and not dst.alive:
            self._violation(
                "SAN-NET-DEAD-DST",
                f"message of {nbytes} byte(s) from {src.name!r} addressed "
                f"to dead node {dst.name!r} (died at {dst.failed_at!r}); "
                "dead nodes receive nothing",
            )
        if (
            self.config.torn_messages
            and item_bytes is not None
            and item_bytes > 0
            and nbytes % item_bytes != 0
        ):
            self._violation(
                "SAN-NET-TORN",
                f"message {src.name!r} -> {dst.name!r} of {nbytes} byte(s) "
                f"is not a whole number of {item_bytes}-byte items; "
                "messages move whole items (paper step 4)",
            )

    # -- MemoryManager -----------------------------------------------------

    def on_manager_created(self, manager: "MemoryManager") -> None:
        """Called by :meth:`MemoryManager.__init__` while installed."""
        self.stats.managers_tracked += 1
        if self.config.memory_leaks:
            self._managers.append(weakref.ref(manager))

    def assert_no_leaks(self) -> None:
        """Raise SAN-MEM-LEAK if any tracked manager still pins memory."""
        if not self.config.memory_leaks:
            return
        leaks = []
        for ref in self._managers:
            mgr = ref()
            if mgr is not None and mgr.in_use > 0:
                leaks.append(f"{mgr!r}")
        if leaks:
            self._violation(
                "SAN-MEM-LEAK",
                "memory reservations still pinned at scope end: "
                + "; ".join(leaks)
                + " — every acquire must be released (use mem.reserve)",
            )


# One process-wide stack so nested installs (a sanitizer test inside the
# suite-wide fixture) compose; only the innermost sanitizer is consulted.
_ACTIVE: list[RuntimeSanitizer] = []  # repro: noqa REP008(process-global sanitizer stack, deliberately shared)


def active_sanitizer() -> Optional[RuntimeSanitizer]:
    """The innermost installed sanitizer, or None (the fast path)."""
    return _ACTIVE[-1] if _ACTIVE else None


def install_sanitizers(
    config: Optional[SanitizerConfig] = None,
) -> RuntimeSanitizer:
    """Arm a new sanitizer and return it (stack discipline: LIFO)."""
    san = RuntimeSanitizer(config)
    _ACTIVE.append(san)
    return san


def uninstall_sanitizers(san: Optional[RuntimeSanitizer] = None) -> None:
    """Disarm ``san`` (default: the innermost installed sanitizer)."""
    if not _ACTIVE:
        raise RuntimeError("no sanitizer installed")
    if san is None:
        _ACTIVE.pop()
        return
    try:
        _ACTIVE.remove(san)
    except ValueError:
        raise RuntimeError("sanitizer is not installed") from None


@contextmanager
def sanitized(
    config: Optional[SanitizerConfig] = None,
    check_leaks: bool = True,
) -> Iterator[RuntimeSanitizer]:
    """Context-managed install: arm, run, leak-check (on success), disarm."""
    san = install_sanitizers(config)
    try:
        yield san
        if check_leaks:
            san.assert_no_leaks()
    finally:
        uninstall_sanitizers(san)
