"""Machine-readable per-step communication schemas.

The second half of the protocol verifier: walk an algorithm entry point
through the project call graph and emit, per step boundary, the *op
tree* of communication that step performs.  The tree grammar is small:

* ``{"kind": "gather"|"bcast"|"scatter"|"alltoallv"|"send"|"transfer",
  "root": <expr text or null>}`` — one primitive op;
* ``{"kind": "seq", "ops": [...], "repeat": bool, "optional": bool}`` —
  a sequence (a loop body when ``repeat``, a maybe-skipped region when
  ``optional``);
* ``{"kind": "alt", "arms": [[...], [...]]}`` — exactly one arm runs
  (an ``if``/``else`` or an early-``return`` split).

Branch conditions and loop bounds are erased (the schema describes every
run), which is exactly what makes the dynamic half checkable: the
trace-conformance matcher in :mod:`repro.obs.conformance` parses a
recorded run's per-step ``NetTransfer`` sequence against this grammar.

``barrier`` ops are recorded in the tree for documentation but produce
no network transfers (clock synchronisation is free), so the matcher
skips them.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.analysis.engine import AnalysisError
from repro.analysis.flow.project import (
    FunctionInfo,
    Project,
    _is_runner_run,
    _is_step_with_item,
)
from repro.analysis.protocol.extract import (
    barrier_call_chain,
    comm_call_chain,
    step_literal,
    transfer_call_chain,
)

#: Schema format version (the JSON ``version`` key).
PROTOCOL_SCHEMA_VERSION = 1

#: Algorithm entry points whose protocols ``--emit-schema`` extracts.
KNOWN_ENTRIES: dict[str, str] = {
    "external_psrs": "core/external_psrs.py::_sort_impl",
    "in_core_psrs": "core/in_core_psrs.py::sort_in_core",
    "overpartition": "core/overpartition.py::sort_overpartitioned",
    "dewitt": "core/dewitt.py::sort_dewitt_distributed",
    "hyperquicksort": "core/hyperquicksort.py::sort_hyperquicksort",
}

_MAX_DEPTH = 8


@dataclass
class _StepEntry:
    name: str
    optional: bool
    may_repeat: bool
    ops: list[dict] = field(default_factory=list)


def _prim(kind: str, root: Optional[ast.expr]) -> dict:
    return {"kind": kind, "root": ast.unparse(root) if root is not None else None}


def _seq(ops: list[dict], *, repeat: bool = False, optional: bool = False) -> dict:
    return {"kind": "seq", "ops": ops, "repeat": repeat, "optional": optional}


def _alt(arms: list[list[dict]]) -> Optional[dict]:
    """An alternation, simplified: identical arms collapse, empty is None."""
    if all(not arm for arm in arms):
        return None
    if len(arms) == 2 and arms[0] == arms[1]:
        ops = arms[0]
        return ops[0] if len(ops) == 1 else _seq(ops)
    return {"kind": "alt", "arms": arms}


def _normalize_list(ops: list[dict]) -> list[dict]:
    """Flatten transparent seqs and drop empty subtrees."""
    out: list[dict] = []
    for op in ops:
        norm = _normalize(op)
        if norm is None:
            continue
        if norm["kind"] == "seq" and not norm["repeat"] and not norm["optional"]:
            out.extend(norm["ops"])
        else:
            out.append(norm)
    return out


def _normalize(op: dict) -> Optional[dict]:
    """Canonicalize one op tree node (idempotent).

    ``alt([], [x])`` becomes an optional seq, single-arm alts inline,
    duplicate arms collapse, and a seq whose only child is a seq merges
    flags — keeping emitted schemas readable and matcher states small.
    """
    if op["kind"] == "seq":
        ops = _normalize_list(op["ops"])
        if not ops:
            return None
        if len(ops) == 1 and ops[0]["kind"] == "seq":
            inner = ops[0]
            return _seq(
                inner["ops"],
                repeat=op["repeat"] or inner["repeat"],
                optional=op["optional"] or inner["optional"],
            )
        return _seq(ops, repeat=op["repeat"], optional=op["optional"])
    if op["kind"] == "alt":
        uniq: list[list[dict]] = []
        for arm in op["arms"]:
            norm_arm = _normalize_list(arm)
            if norm_arm not in uniq:
                uniq.append(norm_arm)
        nonempty = [a for a in uniq if a]
        if not nonempty:
            return None
        if len(uniq) == 1:
            arm = uniq[0]
            return arm[0] if len(arm) == 1 else _seq(arm)
        if len(nonempty) == 1 and len(uniq) == 2:
            arm = nonempty[0]
            if len(arm) == 1 and arm[0]["kind"] == "seq":
                return _seq(
                    arm[0]["ops"],
                    repeat=arm[0]["repeat"],
                    optional=True,
                )
            return _seq(arm, optional=True)
        return {"kind": "alt", "arms": uniq}
    return op


def _terminates(stmts: list[ast.stmt]) -> bool:
    """True when control never falls off the end of ``stmts``."""
    if not stmts:
        return False
    last = stmts[-1]
    if isinstance(last, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
        return True
    if isinstance(last, ast.If):
        return _terminates(last.body) and _terminates(last.orelse)
    return False


class SchemaBuilder:
    """Extract one algorithm's per-step protocol from the project model."""

    def __init__(self, project: Project, entry_key: str, algorithm: str) -> None:
        entry = project.functions.get(entry_key)
        if entry is None:
            raise AnalysisError(f"schema entry point {entry_key!r} not found")
        self.project = project
        self.entry = entry
        self.algorithm = algorithm
        self.steps: dict[str, _StepEntry] = {}
        # Resolve call nodes via the already-built call graph.
        self._callee_by_node: dict[int, FunctionInfo] = {}
        for fn in project.functions.values():
            for site in fn.callers:
                self._callee_by_node[id(site.node)] = fn

    def build(self) -> dict:
        self._discover(self.entry.node.body, optional=False, in_loop=False,
                       visited=frozenset({self.entry.key}), depth=0)
        return {
            "version": PROTOCOL_SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "entry": self.entry.key,
            "steps": [
                {
                    "name": s.name,
                    "optional": s.optional,
                    "may_repeat": s.may_repeat,
                    "ops": s.ops,
                }
                for s in self.steps.values()
            ],
        }

    # -- step discovery (outside any step) -----------------------------------

    def _register(self, name: str, body_ops: list[dict], *, optional: bool,
                  in_loop: bool) -> None:
        entry = self.steps.get(name)
        if entry is None:
            self.steps[name] = _StepEntry(
                name=name,
                optional=optional,
                may_repeat=in_loop,
                ops=_normalize_list(body_ops),
            )
        else:
            entry.may_repeat = True  # reached from more than one site / a loop
            entry.optional = entry.optional and optional

    def _discover(self, stmts: list[ast.stmt], *, optional: bool, in_loop: bool,
                  visited: frozenset[str], depth: int) -> None:
        for stmt in stmts:
            self._discover_node(stmt, optional=optional, in_loop=in_loop,
                                visited=visited, depth=depth)

    def _discover_node(self, node: ast.AST, *, optional: bool, in_loop: bool,
                       visited: frozenset[str], depth: int) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            stepped = False
            for item in node.items:
                if _is_step_with_item(item) and isinstance(item.context_expr, ast.Call):
                    name = step_literal(item.context_expr)
                    if name:
                        self._register(
                            name,
                            self._build_ops(node.body, visited, depth),
                            optional=optional,
                            in_loop=in_loop,
                        )
                        stepped = True
            if not stepped:
                self._discover(node.body, optional=optional, in_loop=in_loop,
                               visited=visited, depth=depth)
            return
        if isinstance(node, ast.If):
            self._discover(node.body, optional=True, in_loop=in_loop,
                           visited=visited, depth=depth)
            self._discover(node.orelse, optional=True, in_loop=in_loop,
                           visited=visited, depth=depth)
            return
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            self._discover(node.body, optional=optional, in_loop=True,
                           visited=visited, depth=depth)
            self._discover(node.orelse, optional=True, in_loop=in_loop,
                           visited=visited, depth=depth)
            return
        if isinstance(node, ast.Try):
            self._discover(node.body, optional=optional, in_loop=in_loop,
                           visited=visited, depth=depth)
            for handler in node.handlers:
                self._discover(handler.body, optional=True, in_loop=in_loop,
                               visited=visited, depth=depth)
            self._discover(node.orelse, optional=True, in_loop=in_loop,
                           visited=visited, depth=depth)
            self._discover(node.finalbody, optional=optional, in_loop=in_loop,
                           visited=visited, depth=depth)
            return
        if isinstance(node, ast.Call):
            if _is_runner_run(node):
                name = step_literal(node)
                if name:
                    ops: list[dict] = []
                    for arg in node.args[2:]:
                        ops.extend(self._callable_ops(arg, visited, depth))
                    self._register(name, ops, optional=optional, in_loop=in_loop)
                    return
            callee = self._callee_by_node.get(id(node))
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                self._discover_node(arg, optional=optional, in_loop=in_loop,
                                    visited=visited, depth=depth)
            if callee is not None and callee.key not in visited and depth < _MAX_DEPTH:
                self._discover(callee.node.body, optional=optional,
                               in_loop=in_loop,
                               visited=visited | {callee.key}, depth=depth + 1)
            return
        for child in ast.iter_child_nodes(node):
            self._discover_node(child, optional=optional, in_loop=in_loop,
                                visited=visited, depth=depth)

    def _callable_ops(self, arg: ast.expr, visited: frozenset[str],
                      depth: int) -> list[dict]:
        """Ops of a callable passed to ``runner.run`` (lambda or name)."""
        if isinstance(arg, ast.Lambda):
            return self._expr_ops(arg.body, visited, depth)
        callee = None
        if isinstance(arg, (ast.Name, ast.Attribute)):
            # registered by reference: find the FunctionInfo by name
            if isinstance(arg, ast.Name):
                callee = self._resolve_by_name(arg.id)
        if callee is not None and callee.key not in visited and depth < _MAX_DEPTH:
            return self._build_ops(callee.node.body, visited | {callee.key},
                                   depth + 1)
        return []

    def _resolve_by_name(self, name: str) -> Optional[FunctionInfo]:
        module = self.entry.module
        for qualname, fn in module.functions.items():
            if qualname.split(".")[-1] == name:
                return fn
        return None

    # -- op-tree construction (inside a step) --------------------------------

    def _build_ops(self, stmts: list[ast.stmt], visited: frozenset[str],
                   depth: int) -> list[dict]:
        out: list[dict] = []
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, ast.If):
                then_ops = self._build_ops(stmt.body, visited, depth)
                else_ops = self._build_ops(stmt.orelse, visited, depth)
                rest = self._build_ops(stmts[i + 1:], visited, depth)
                if _terminates(stmt.body) and not _terminates(stmt.orelse):
                    alt = _alt([then_ops, else_ops + rest])
                elif _terminates(stmt.orelse) and not _terminates(stmt.body):
                    alt = _alt([then_ops + rest, else_ops])
                else:
                    alt = _alt([then_ops, else_ops])
                    if alt is not None:
                        out.append(alt)
                    out.extend(rest)
                    return out
                if alt is not None:
                    out.append(alt)
                return out
            out.extend(self._stmt_ops(stmt, visited, depth))
        return out

    def _stmt_ops(self, stmt: ast.stmt, visited: frozenset[str],
                  depth: int) -> list[dict]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return []
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            body = self._build_ops(stmt.body, visited, depth)
            body += self._build_ops(stmt.orelse, visited, depth)
            return [_seq(body, repeat=True, optional=True)] if body else []
        if isinstance(stmt, ast.While):
            body = self._build_ops(stmt.body, visited, depth)
            body += self._build_ops(stmt.orelse, visited, depth)
            return [_seq(body, repeat=True, optional=True)] if body else []
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if _is_step_with_item(item) and isinstance(item.context_expr, ast.Call):
                    name = step_literal(item.context_expr)
                    if name:
                        # a nested step: its transfers carry its own label
                        self._register(
                            name,
                            self._build_ops(stmt.body, visited, depth),
                            optional=True,
                            in_loop=True,
                        )
                        return []
            return self._build_ops(stmt.body, visited, depth)
        if isinstance(stmt, ast.Try):
            ops = self._build_ops(stmt.body, visited, depth)
            handler_arms = [self._build_ops(h.body, visited, depth)
                            for h in stmt.handlers]
            handler_ops = [op for arm in handler_arms for op in arm]
            if handler_ops:
                ops.append(_seq(handler_ops, optional=True))
            ops += self._build_ops(stmt.orelse, visited, depth)
            ops += self._build_ops(stmt.finalbody, visited, depth)
            return ops
        out: list[dict] = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                out.extend(self._expr_ops(child, visited, depth))
        return out

    def _expr_ops(self, expr: ast.expr, visited: frozenset[str],
                  depth: int) -> list[dict]:
        if isinstance(expr, ast.Lambda):
            return self._expr_ops(expr.body, visited, depth)
        if isinstance(expr, ast.Call):
            out: list[dict] = []
            for arg in expr.args:
                out.extend(self._expr_ops(arg, visited, depth))
            for kw in expr.keywords:
                out.extend(self._expr_ops(kw.value, visited, depth))
            chain = comm_call_chain(expr)
            if chain is not None:
                root = None
                if chain[-1] in ("gather", "bcast", "scatter"):
                    for kw in expr.keywords:
                        if kw.arg == "root":
                            root = kw.value
                    if root is None and len(expr.args) >= 2:
                        root = expr.args[1]
                out.append(_prim(chain[-1], root))
            elif barrier_call_chain(expr) is not None:
                out.append(_prim("barrier", None))
            elif transfer_call_chain(expr) is not None:
                out.append(_prim("transfer", None))
            else:
                if _is_runner_run(expr):
                    name = step_literal(expr)
                    if name:
                        ops: list[dict] = []
                        for arg in expr.args[2:]:
                            ops.extend(self._callable_ops(arg, visited, depth))
                        self._register(name, ops, optional=True, in_loop=True)
                        return out
                callee = self._callee_by_node.get(id(expr))
                if callee is not None and callee.key not in visited and depth < _MAX_DEPTH:
                    out.extend(
                        self._build_ops(callee.node.body,
                                        visited | {callee.key}, depth + 1)
                    )
            for child in ast.iter_child_nodes(expr.func):
                if isinstance(child, ast.expr):
                    out.extend(self._expr_ops(child, visited, depth))
            return out
        out = []
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                out.extend(self._expr_ops(child, visited, depth))
        return out


def extract_schema(project: Project, algorithm: str,
                   entry_key: Optional[str] = None) -> dict:
    """Build the per-step protocol schema of one algorithm entry point."""
    from repro.analysis.protocol import PROTOCOL_ENGINE_VERSION

    key = entry_key if entry_key is not None else KNOWN_ENTRIES.get(algorithm)
    if key is None:
        raise AnalysisError(
            f"unknown algorithm {algorithm!r}; have {', '.join(sorted(KNOWN_ENTRIES))}"
        )
    schema = SchemaBuilder(project, key, algorithm).build()
    schema["protocol_engine_version"] = PROTOCOL_ENGINE_VERSION
    return schema


def emit_schemas(project: Project, out_dir: str | Path) -> list[Path]:
    """Write ``protocol-<algorithm>.json`` for every known entry present."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for algorithm, key in KNOWN_ENTRIES.items():
        if key not in project.functions:
            continue
        schema = extract_schema(project, algorithm, key)
        path = out / f"protocol-{algorithm}.json"
        path.write_text(json.dumps(schema, indent=2) + "\n", encoding="utf-8")
        written.append(path)
    return written
