"""REP201..REP206: static communication-protocol conformance rules.

All six rules are queries over the per-function
:class:`~repro.analysis.protocol.extract.FunctionSummary` model: the
extractor maps the centralized simulation's per-rank loops and
rank-dependent branches back onto the SPMD execution each rank would
perform, and the rules flag the shapes that deadlock (or address the
wrong node) once the lockstep barrier loop is replaced by an
event-driven scheduler or a real MPI backend.

Point-to-point ``send`` is exempt from the order rules (REP201/REP204):
in an SPMD program sends legitimately run on a sender-dependent subset
of ranks; what must match everywhere is the *collective* schedule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding
from repro.analysis.flow.typestate import DeepRule
from repro.analysis.protocol.extract import (
    COLLECTIVES,
    CommOp,
    FunctionSummary,
    Project,
    protocol_summaries,
)

#: Modules whose communication schedule the verifier polices.
PROTOCOL_SCOPE = ("core/", "extsort/", "faults/")


def _cond_text(op_or_test: "CommOp | ast.expr") -> str:
    if isinstance(op_or_test, CommOp):
        return ", ".join(ast.unparse(c) for c in op_or_test.rank_conds)
    return ast.unparse(op_or_test)


class ProtocolRule(DeepRule):
    """Base: iterate in-scope function summaries."""

    scope = PROTOCOL_SCOPE

    def check_project(self, project: Project) -> Iterator[Finding]:
        for summary in protocol_summaries(project):
            if not self.applies_to(summary.fn.module.relpath):
                continue
            yield from self.check_summary(summary)

    def check_summary(self, summary: FunctionSummary) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover

    def _finding(self, summary: FunctionSummary, node: ast.AST, message: str) -> Finding:
        return summary.fn.module.finding(
            self,  # type: ignore[arg-type]  # duck-typed Rule metadata
            node,
            f"{message} [in {summary.fn.qualname}()]",
        )


class CollectiveOrderRule(ProtocolRule):
    code = "REP201"
    name = "collective-order-divergence"
    summary = "rank-dependent branch arms issue different collective sequences"
    rationale = (
        "A collective is a rendezvous of every rank.  If a branch whose "
        "condition differs across ranks (e.g. `if i != leader`) issues "
        "gather/bcast/scatter/alltoallv in one arm but not (or in a "
        "different order) in the other, some ranks arrive at a collective "
        "the others never post — a deadlock under asynchronous execution, "
        "silently absorbed today only by the centralized BSP simulation."
    )
    fix_hint = (
        "Hoist collectives out of rank-dependent branches; keep only "
        "per-rank payload preparation (and point-to-point sends) inside."
    )

    def check_summary(self, summary: FunctionSummary) -> Iterator[Finding]:
        for branch in summary.branches:
            then_seq = self._arm(summary, branch.node, True)
            else_seq = self._arm(summary, branch.node, False)
            if then_seq != else_seq:
                yield self._finding(
                    summary,
                    branch.node,
                    f"branch on rank-dependent `{_cond_text(branch.test)}` "
                    f"issues collectives {then_seq or ['<none>']} in one arm "
                    f"vs {else_seq or ['<none>']} in the other",
                )

    @staticmethod
    def _arm(summary: FunctionSummary, if_node: ast.If, arm: bool) -> list[str]:
        key = (id(if_node), arm)
        return [
            op.kind
            for op in summary.ops
            if op.kind in COLLECTIVES and key in op.branch_path
        ]


class RootMismatchRule(ProtocolRule):
    code = "REP202"
    name = "root-mismatch"
    summary = "collective root argument can differ across ranks"
    rationale = (
        "gather/bcast/scatter must name the same root on every rank.  A "
        "root expression derived from a per-rank loop variable (or any "
        "SPMD-divergent value) means different ranks would address "
        "different roots — in MPI that is undefined behaviour; here it "
        "charges the wrong links and converges only by accident."
    )
    fix_hint = (
        "Compute the root once from shared state (e.g. "
        "`view.ranks.index(config.root)`) before any per-rank loop."
    )

    def check_summary(self, summary: FunctionSummary) -> Iterator[Finding]:
        for op in summary.ops:
            if op.kind not in ("gather", "bcast", "scatter") or op.root is None:
                continue
            if summary.env.is_rank_expr(op.root):
                yield self._finding(
                    summary,
                    op.node,
                    f"{op.kind} root `{ast.unparse(op.root)}` is "
                    "rank-dependent; every rank must name the same root",
                )


class SelfSendRule(ProtocolRule):
    code = "REP203"
    name = "unmatched-send"
    summary = "point-to-point send with no distinct receiver (self-send)"
    rationale = (
        "comm.send(src, dst) models a rendezvous between two *different* "
        "ranks.  A definite self-send (src == dst syntactically or as "
        "constants) transfers nothing in the network model (same-host "
        "moves are free) — the code believes data crossed the network "
        "when it did not, and on a real backend it deadlocks a "
        "synchronous send.  (The converse unmatched case — a receiver "
        "copy that is dropped — is REP104's cross-node-escape check.)"
    )
    fix_hint = (
        "Guard the send with `if src != dst:` (use the local array "
        "directly on the self path), or compute a distinct destination."
    )

    def check_summary(self, summary: FunctionSummary) -> Iterator[Finding]:
        for op in summary.ops:
            if op.kind != "send" or op.src is None or op.dst is None:
                continue
            if self._definitely_equal(op.src, op.dst):
                # a self-send guarded by `if src != dst` is unreachable
                guard = any(
                    self._guards_inequality(c, op.src, op.dst)
                    for c in op.rank_conds
                )
                if not guard:
                    yield self._finding(
                        summary,
                        op.node,
                        f"send from `{ast.unparse(op.src)}` to "
                        f"`{ast.unparse(op.dst)}` is a definite self-send",
                    )

    @staticmethod
    def _definitely_equal(a: ast.expr, b: ast.expr) -> bool:
        if (
            isinstance(a, ast.Constant)
            and isinstance(b, ast.Constant)
            and isinstance(a.value, int)
            and isinstance(b.value, int)
        ):
            return a.value == b.value
        return ast.unparse(a) == ast.unparse(b)

    @staticmethod
    def _guards_inequality(cond: ast.expr, a: ast.expr, b: ast.expr) -> bool:
        """True for an enclosing ``a != b`` / ``b != a`` test."""
        if not (isinstance(cond, ast.Compare) and len(cond.ops) == 1):
            return False
        if not isinstance(cond.ops[0], ast.NotEq):
            return False
        left, right = ast.unparse(cond.left), ast.unparse(cond.comparators[0])
        sa, sb = ast.unparse(a), ast.unparse(b)
        return {left, right} == {sa, sb}


class CollectiveInRankLoopRule(ProtocolRule):
    code = "REP204"
    name = "collective-in-rank-loop"
    summary = "collective issued inside a per-rank (or rank-trip-count) loop"
    rationale = (
        "A loop over ranks is the SPMD expansion of 'each rank does X'; "
        "a collective inside it executes p times globally but would "
        "execute a *rank-dependent* number of times per rank in a real "
        "SPMD program (each rank only iterates once as itself) — the "
        "schedules cannot line up.  The same holds for any loop whose "
        "trip count is rank-dependent."
    )
    fix_hint = (
        "Build per-rank payload lists inside the loop and issue one "
        "collective after it (gather/alltoallv take the whole list)."
    )

    def check_summary(self, summary: FunctionSummary) -> Iterator[Finding]:
        for op in summary.ops:
            if op.kind not in COLLECTIVES:
                continue
            if op.per_rank_loop is not None:
                yield self._finding(
                    summary, op.node,
                    f"{op.kind} inside a per-rank loop runs once per rank "
                    "instead of once per superstep",
                )
            elif op.tainted_loop is not None:
                yield self._finding(
                    summary, op.node,
                    f"{op.kind} inside a loop with a rank-dependent trip "
                    "count gives each rank a different collective schedule",
                )


class BarrierConsistencyRule(ProtocolRule):
    code = "REP205"
    name = "barrier-inconsistency"
    summary = "barrier or step boundary reachable on a rank-dependent subset"
    rationale = (
        "Barriers and step boundaries are the superstep skeleton: every "
        "rank must reach every one of them, in the same order.  A "
        "barrier (or `with x.step(...)` / `runner.run(...)`) under a "
        "rank-dependent condition or inside a per-rank loop means some "
        "ranks wait at a barrier the others never enter."
    )
    fix_hint = (
        "Move the barrier/step boundary to straight-line orchestration "
        "code; branch only on shared (rank-independent) state."
    )

    def check_summary(self, summary: FunctionSummary) -> Iterator[Finding]:
        for op in summary.ops:
            if op.kind not in ("barrier", "step"):
                continue
            what = "barrier" if op.kind == "barrier" else (
                f"step boundary {op.step_name!r}" if op.step_name
                else "step boundary"
            )
            if op.rank_conds:
                yield self._finding(
                    summary, op.node,
                    f"{what} is conditional on rank-dependent "
                    f"`{_cond_text(op)}`",
                )
            elif op.per_rank_loop is not None or op.tainted_loop is not None:
                yield self._finding(
                    summary, op.node,
                    f"{what} inside a per-rank loop is entered a "
                    "rank-dependent number of times",
                )


class DegradedViewRankRule(ProtocolRule):
    code = "REP206"
    name = "degraded-view-rank"
    summary = "view communication addressed by a global (pre-degradation) rank"
    rationale = (
        "A ClusterView's communicator numbers ranks by *position* in its "
        "survivor list, while nodes keep their global ranks.  Passing a "
        "global rank (a `.rank` attribute, a survivor-set element, a "
        "config constant) as a view collective's root/src/dst — or "
        "indexing a view-collective result with one — addresses the "
        "wrong node as soon as the view is degraded.  PR 4 and PR 5 "
        "each found one of these dynamically; this rule is the static "
        "generalization."
    )
    fix_hint = (
        "Translate with `view.ranks.index(global_rank)` first (or "
        "enumerate positions directly and keep global ranks out of "
        "communicator arguments)."
    )

    def check_summary(self, summary: FunctionSummary) -> Iterator[Finding]:
        env = summary.env
        for op in summary.ops:
            if not op.on_view or op.kind not in ("send", "gather", "bcast", "scatter"):
                continue
            for label, arg in (("root", op.root), ("src", op.src), ("dst", op.dst)):
                if arg is not None and env.is_grank_expr(arg):
                    yield self._finding(
                        summary, op.node,
                        f"{op.kind} {label} `{ast.unparse(arg)}` is a "
                        "global rank, but a view communicator indexes by "
                        "position in the survivor list",
                    )
        for sub in summary.view_index_sites:
            yield self._finding(
                summary, sub,
                f"view-collective result indexed by global rank "
                f"`{ast.unparse(sub.slice)}`; results are ordered by "
                "view position",
            )
