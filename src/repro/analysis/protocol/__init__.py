"""Communication-protocol verification: the rules REP201..REP206.

Layered on the flow engine's project model
(:mod:`repro.analysis.flow.project`), this subpackage abstract-interprets
each function into a per-rank communication summary (:mod:`.extract`)
and derives six rules from it (:mod:`.rules`):

=======  ==============================  =================================
code     name                            invariant
=======  ==============================  =================================
REP201   collective-order-divergence     every rank issues the same
                                         collective sequence
REP202   root-mismatch                   collective roots agree across
                                         ranks
REP203   unmatched-send                  no definite self-sends
REP204   collective-in-rank-loop         collectives run once per
                                         superstep, not per rank
REP205   barrier-inconsistency           barriers/steps reached by all
                                         ranks
REP206   degraded-view-rank              view comm addressed by position,
                                         not global rank
=======  ==============================  =================================

Entry points: :func:`analyze_protocol` (wired into ``repro lint
--protocol``) and :func:`~repro.analysis.protocol.schema.extract_schema`
(the ``--emit-schema`` per-step JSON the trace-conformance checker in
:mod:`repro.obs.conformance` validates recorded runs against).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.engine import (
    ALL_RULES as _NOQA_ALL,
    AnalysisError,
    AnalysisReport,
    FileReport,
    Suppression,
    parse_noqa,
)
from repro.analysis.flow import load_project
from repro.analysis.flow.project import Project
from repro.analysis.protocol.extract import (
    FunctionSummary,
    protocol_summaries,
    summarize_function,
)
from repro.analysis.protocol.rules import (
    BarrierConsistencyRule,
    CollectiveInRankLoopRule,
    CollectiveOrderRule,
    DegradedViewRankRule,
    ProtocolRule,
    RootMismatchRule,
    SelfSendRule,
)
from repro.analysis.protocol.schema import (
    KNOWN_ENTRIES,
    PROTOCOL_SCHEMA_VERSION,
    extract_schema,
    emit_schemas,
)

#: version of the protocol engine, reported in the JSON payload
PROTOCOL_ENGINE_VERSION = "1.0"

#: all protocol rules, in code order — the registry the CLI and tests use
PROTOCOL_RULES: tuple[ProtocolRule, ...] = (
    CollectiveOrderRule(),
    RootMismatchRule(),
    SelfSendRule(),
    CollectiveInRankLoopRule(),
    BarrierConsistencyRule(),
    DegradedViewRankRule(),
)

PROTOCOL_RULES_BY_CODE: dict[str, ProtocolRule] = {
    r.code: r for r in PROTOCOL_RULES
}

__all__ = [
    "KNOWN_ENTRIES",
    "PROTOCOL_ENGINE_VERSION",
    "PROTOCOL_RULES",
    "PROTOCOL_RULES_BY_CODE",
    "PROTOCOL_SCHEMA_VERSION",
    "FunctionSummary",
    "ProtocolRule",
    "analyze_protocol",
    "analyze_protocol_source",
    "emit_schemas",
    "extract_schema",
    "get_protocol_rules",
    "protocol_summaries",
    "summarize_function",
]


def get_protocol_rules(
    codes: Sequence[str] | None = None,
) -> tuple[ProtocolRule, ...]:
    """Resolve ``--rule`` selections against the protocol registry."""
    if not codes:
        return PROTOCOL_RULES
    out = []
    for code in codes:
        rule = PROTOCOL_RULES_BY_CODE.get(code.upper())
        if rule is None:
            raise AnalysisError(
                f"unknown protocol rule {code!r}; have "
                f"{', '.join(sorted(PROTOCOL_RULES_BY_CODE))}"
            )
        out.append(rule)
    return tuple(out)


def _run_project(
    project: Project, rules: Sequence[ProtocolRule]
) -> AnalysisReport:
    """Run protocol rules over a built project, honouring noqa directives."""
    by_display: dict[str, FileReport] = {}
    noqa_by_display: dict[str, dict[int, dict[str, str]]] = {}
    for module in project.modules.values():
        by_display[module.display_path] = FileReport(path=module.display_path)
        noqa_by_display[module.display_path] = parse_noqa(module.lines)
    for rule in rules:
        for finding in rule.check_project(project):
            report = by_display[finding.path]
            directives = noqa_by_display[finding.path].get(finding.line)
            if directives is not None and (
                _NOQA_ALL in directives or finding.rule in directives
            ):
                reason = directives.get(
                    finding.rule, directives.get(_NOQA_ALL, "")
                )
                report.suppressed.append(Suppression(finding, reason))
            else:
                report.findings.append(finding)
    report_out = AnalysisReport()
    for file_report in by_display.values():
        file_report.findings.sort()
        report_out.files.append(file_report)
    return report_out


def analyze_protocol(
    paths: Iterable[str | Path],
    rules: Sequence[ProtocolRule] | None = None,
    project: Project | None = None,
) -> AnalysisReport:
    """Build the project model for ``paths`` and run the protocol rules."""
    if project is None:
        project = load_project(paths)
    return _run_project(project, PROTOCOL_RULES if rules is None else rules)


def analyze_protocol_source(
    source: str,
    path: str,
    rules: Sequence[ProtocolRule] | None = None,
) -> FileReport:
    """Protocol-analyse one module given as text (the test-fixture entry).

    The module is its own one-file project, exactly like
    :func:`repro.analysis.flow.analyze_deep_source`.
    """
    project = Project.from_sources([(source, path, path)])
    report = _run_project(project, PROTOCOL_RULES if rules is None else rules)
    for file_report in report.files:
        if file_report.path == path:
            return file_report
    return FileReport(path=path)  # pragma: no cover - defensive
