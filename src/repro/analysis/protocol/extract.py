"""Per-function communication summaries for the protocol rules.

The simulation is *centralized*: one orchestrating function calls each
SimComm collective once with every rank's payload, and the SPMD "each
rank executes" structure shows up as per-rank loops (``for i in
range(p)``, ``for node in view.nodes``) and as rank-dependent branches
(``if i != leader``).  The extractor abstract-interprets each function
body into exactly that structure:

* a **rank-taint** environment (:class:`TaintEnv`): which names hold
  per-rank (SPMD-divergent) values, which hold *global* ranks (the
  pre-degradation constants REP206 cares about), which are view-like
  communicators, and which are rank collections;
* an ordered list of :class:`CommOp` — every
  ``send/gather/bcast/scatter/alltoallv/barrier`` call, every
  ``network.transfer``, and every step boundary (``with x.step(...)``
  or ``runner.run(view, "name", ...)``) — each annotated with its
  enclosing step name, rank-dependent branch conditions, branch path
  (for REP201's arm-sequence comparison) and enclosing per-rank /
  rank-trip-count loops;
* the rank-dependent branches themselves (:class:`RankBranch`) and any
  subscript of a view-collective result by a global-rank expression
  (the dynamic bug PR 5 found, generalized by REP206).

The rules in :mod:`repro.analysis.protocol.rules` are pure queries over
these summaries; the schema builder in
:mod:`repro.analysis.protocol.schema` re-uses the same op detection.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from repro.analysis.flow.project import (
    COMM_OPS,
    FunctionInfo,
    Project,
    _is_runner_run,
    _is_step_with_item,
    name_chain,
)

#: Collectives proper (every rank participates; order must match).
COLLECTIVES = frozenset({"gather", "bcast", "scatter", "alltoallv"})

#: Conventional names for collections of *global* ranks (survivor sets).
_GRANK_COLLECTION_NAMES = frozenset(
    {"ranks", "active", "survivors", "active_ranks", "surviving"}
)

#: Conventional names for per-rank iterables in *position* space.
_RANK_COLLECTION_NAMES = frozenset({"group", "nodes", "positions"})


def comm_call_chain(call: ast.Call) -> Optional[list[str]]:
    """``["view", "comm", "gather"]`` for a SimComm op call, else None."""
    chain = name_chain(call.func)
    if (
        len(chain) >= 2
        and chain[-1] in COMM_OPS
        and any("comm" in part for part in chain[:-1])
    ):
        return chain
    return None


def barrier_call_chain(call: ast.Call) -> Optional[list[str]]:
    """``["view", "barrier"]`` for a barrier call with a receiver."""
    chain = name_chain(call.func)
    if len(chain) >= 2 and chain[-1] == "barrier":
        return chain
    return None


def transfer_call_chain(call: ast.Call) -> Optional[list[str]]:
    """``["cluster", "network", "transfer"]`` for a raw network charge."""
    chain = name_chain(call.func)
    if (
        len(chain) >= 2
        and chain[-1] == "transfer"
        and any("network" in part for part in chain[:-1])
    ):
        return chain
    return None


def step_literal(call: ast.Call) -> str:
    """Literal step name of a ``.step("x")`` / ``runner.run(v, "x", f)``."""
    args = call.args
    chain = name_chain(call.func)
    if chain and chain[-1] == "step":
        if args and isinstance(args[0], ast.Constant) and isinstance(args[0].value, str):
            return args[0].value
        return ""
    if len(args) >= 2 and isinstance(args[1], ast.Constant) and isinstance(args[1].value, str):
        return args[1].value
    return ""


def _call_root(call: ast.Call) -> Optional[ast.expr]:
    """The root argument of a gather/bcast/scatter call (kw or positional)."""
    for kw in call.keywords:
        if kw.arg == "root":
            return kw.value
    if len(call.args) >= 2:
        return call.args[1]
    return None


# --------------------------------------------------------------------------
# Rank-taint environment
# --------------------------------------------------------------------------


def _scope_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` confined to one function scope (lambdas included,
    nested def/class bodies excluded)."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.append(child)


@dataclass
class TaintEnv:
    """Which names hold what, inside one function body.

    ``rank_vars`` are SPMD-divergent values (per-rank loop variables and
    anything derived from them); ``grank_vars`` additionally hold
    *global* rank numbers, which are only safe communicator arguments on
    the full cluster — a degraded view indexes by position
    (``view.ranks.index(r)`` launders one into the other).
    """

    rank_vars: set[str] = field(default_factory=set)
    grank_vars: set[str] = field(default_factory=set)
    rank_collections: set[str] = field(default_factory=set)
    grank_collections: set[str] = field(default_factory=set)
    view_vars: set[str] = field(default_factory=set)
    view_comm_results: set[str] = field(default_factory=set)

    # -- classification ----------------------------------------------------

    def iter_kind(self, expr: ast.expr) -> str:
        """Classify an iterable: ``"rank"`` (positions), ``"grank"``
        (global ranks), or ``"other"``."""
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            if expr.generators:
                return self.iter_kind(expr.generators[0].iter)
            return "other"
        if isinstance(expr, ast.Name):
            if expr.id in self.grank_collections or expr.id in _GRANK_COLLECTION_NAMES:
                return "grank"
            if expr.id in self.rank_collections or expr.id in _RANK_COLLECTION_NAMES:
                return "rank"
            return "other"
        if isinstance(expr, ast.Call):
            fchain = name_chain(expr.func)
            tail = fchain[-1] if fchain else ""
            if tail == "range" and len(expr.args) == 1:
                arg = expr.args[0]
                achain = name_chain(arg)
                if achain and achain[-1] == "p":
                    return "rank"
                if (
                    isinstance(arg, ast.Call)
                    and name_chain(arg.func) == ["len"]
                    and arg.args
                    and self.iter_kind(arg.args[0]) != "other"
                ):
                    return "rank"
                return "other"
            if tail in ("enumerate", "zip", "sorted", "list", "tuple", "reversed", "set"):
                kinds = [self.iter_kind(a) for a in expr.args]
                if "grank" in kinds:
                    return "grank"
                if "rank" in kinds:
                    return "rank"
                return "other"
            return "other"
        chain = name_chain(expr)
        if chain:
            if chain[-1] == "ranks":
                return "grank"
            if chain[-1] == "nodes":
                return "rank"
        return "other"

    def is_rank_expr(self, expr: ast.expr) -> bool:
        """SPMD-divergent: differs across ranks at the same program point."""
        for node in _scope_nodes(expr):
            if isinstance(node, ast.Name) and node.id in self.rank_vars:
                return True
            if isinstance(node, ast.Attribute) and node.attr == "rank":
                return True
        return False

    def is_grank_expr(self, expr: ast.expr) -> bool:
        """Holds a *global* rank number (pre-degradation constant)."""
        if isinstance(expr, ast.Call):
            fchain = name_chain(expr.func)
            if fchain and fchain[-1] == "index":
                return False  # `.index(r)` launders a rank into a position
            return any(self.is_grank_expr(a) for a in expr.args)
        if isinstance(expr, ast.Name):
            return expr.id in self.grank_vars
        if isinstance(expr, ast.Attribute):
            if expr.attr == "rank":
                return True
            if expr.attr == "root":
                base = name_chain(expr.value)
                return bool(base) and any(
                    "config" in part or "cfg" in part for part in base
                )
            return False
        if isinstance(expr, ast.Subscript):
            base = expr.value
            return isinstance(base, ast.Name) and (
                base.id in self.grank_collections
                or base.id in _GRANK_COLLECTION_NAMES
            )
        if isinstance(expr, ast.IfExp):
            return self.is_grank_expr(expr.body) or self.is_grank_expr(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            return any(self.is_grank_expr(v) for v in expr.values)
        if isinstance(expr, ast.BinOp):
            return self.is_grank_expr(expr.left) or self.is_grank_expr(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self.is_grank_expr(expr.operand)
        return False

    def is_view_receiver(self, chain: list[str]) -> bool:
        """True when a comm/barrier chain hangs off a degradable view."""
        return any(
            part in self.view_vars or "view" in part for part in chain[:-1]
        )


class _EnvBuilder:
    """Bounded fixpoint computing the taint sets for one function."""

    _MAX_PASSES = 5

    def __init__(self, fn_node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.fn_node = fn_node
        self.env = TaintEnv()

    def build(self) -> TaintEnv:
        self._seed_params()
        for _ in range(self._MAX_PASSES):
            before = self._snapshot()
            for node in _scope_nodes(self.fn_node):
                self._visit(node)
            if self._snapshot() == before:
                break
        return self.env

    def _snapshot(self) -> tuple[frozenset[str], ...]:
        e = self.env
        return (
            frozenset(e.rank_vars),
            frozenset(e.grank_vars),
            frozenset(e.rank_collections),
            frozenset(e.grank_collections),
            frozenset(e.view_vars),
            frozenset(e.view_comm_results),
        )

    def _seed_params(self) -> None:
        a = self.fn_node.args
        params = [*a.posonlyargs, *a.args, *a.kwonlyargs]
        if a.vararg is not None:
            params.append(a.vararg)
        if a.kwarg is not None:
            params.append(a.kwarg)
        for p in params:
            nm = p.arg
            ann = ast.unparse(p.annotation) if p.annotation is not None else ""
            if nm == "view" or "View" in ann:
                self.env.view_vars.add(nm)
            if nm == "rank" or nm.endswith("_rank"):
                self.env.grank_vars.add(nm)
                self.env.rank_vars.add(nm)
            if nm in _GRANK_COLLECTION_NAMES or nm.endswith("_ranks"):
                self.env.grank_collections.add(nm)

    # -- one fixpoint pass ---------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._bind_loop(node.target, node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                self._bind_loop(gen.target, gen.iter)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                self._bind_assign(target, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._bind_assign(node.target, node.value)
        elif isinstance(node, ast.NamedExpr):
            self._bind_assign(node.target, node.value)
        elif isinstance(node, ast.AugAssign):
            self._bind_assign(node.target, node.value)

    def _bind_loop(self, target: ast.expr, iter_expr: ast.expr) -> None:
        kind = self.env.iter_kind(iter_expr)
        if kind == "other":
            if self.env.is_rank_expr(iter_expr):
                self._bind_names(target, "rank")
            return
        fchain = name_chain(iter_expr.func) if isinstance(iter_expr, ast.Call) else []
        if (
            fchain
            and fchain[-1] == "enumerate"
            and isinstance(target, ast.Tuple)
            and len(target.elts) == 2
        ):
            # `for pos, x in enumerate(ranks)`: the counter is a position.
            self._bind_names(target.elts[0], "rank")
            self._bind_names(target.elts[1], kind)
            return
        self._bind_names(target, kind)

    def _bind_names(self, target: ast.expr, kind: str) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.env.rank_vars.add(node.id)
                if kind == "grank":
                    self.env.grank_vars.add(node.id)

    def _bind_assign(self, target: ast.expr, value: ast.expr) -> None:
        names = [n.id for n in ast.walk(target) if isinstance(n, ast.Name)]
        if not names:
            return
        if isinstance(value, ast.Call):
            chain = comm_call_chain(value)
            if chain is not None:
                # Collective results are the *shared* rendezvous values —
                # identical on every rank, so they clear nothing and taint
                # nothing; but a view-collective result is position-indexed.
                if self.env.is_view_receiver(chain):
                    self.env.view_comm_results.update(names)
                return
            fchain = name_chain(value.func)
            if len(fchain) >= 2 and fchain[-1] == "view":
                self.env.view_vars.update(names)
                return
        kind = self.env.iter_kind(value)
        if kind == "grank":
            self.env.grank_collections.update(names)
        elif kind == "rank":
            self.env.rank_collections.update(names)
        if self.env.is_grank_expr(value):
            self.env.grank_vars.update(names)
            self.env.rank_vars.update(names)
        elif self.env.is_rank_expr(value):
            self.env.rank_vars.update(names)


# --------------------------------------------------------------------------
# Communication ops and the summary walker
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _OpContext:
    """Lexical context flowing down the op walk."""

    step: Optional[str] = None  # innermost step name ("" = non-literal)
    rank_conds: tuple[ast.expr, ...] = ()
    branch_path: tuple[tuple[int, bool], ...] = ()
    per_rank_loop: Optional[ast.AST] = None
    tainted_loop: Optional[ast.AST] = None


@dataclass
class CommOp:
    """One communication operation (or step boundary) at a call site."""

    kind: str  # send|gather|bcast|scatter|alltoallv|barrier|transfer|step
    node: ast.AST
    chain: tuple[str, ...]
    on_view: bool
    step: Optional[str]
    step_name: Optional[str] = None  # for kind == "step"
    root: Optional[ast.expr] = None
    src: Optional[ast.expr] = None
    dst: Optional[ast.expr] = None
    rank_conds: tuple[ast.expr, ...] = ()
    branch_path: tuple[tuple[int, bool], ...] = ()
    per_rank_loop: Optional[ast.AST] = None
    tainted_loop: Optional[ast.AST] = None


@dataclass
class RankBranch:
    """An ``if`` whose test is rank-dependent (SPMD-divergent)."""

    node: ast.If
    test: ast.expr


@dataclass
class FunctionSummary:
    """The extracted communication protocol of one function."""

    fn: FunctionInfo
    env: TaintEnv
    ops: list[CommOp] = field(default_factory=list)
    branches: list[RankBranch] = field(default_factory=list)
    #: subscripts of a view-collective result by a global-rank expression
    view_index_sites: list[ast.Subscript] = field(default_factory=list)


class _OpWalker:
    """Collect :class:`CommOp` in source order with lexical context."""

    def __init__(self, summary: FunctionSummary) -> None:
        self.summary = summary
        self.env = summary.env

    def walk_function(self) -> None:
        ctx = _OpContext()
        for stmt in self.summary.fn.node.body:
            self._walk(stmt, ctx)

    def _walk_body(self, stmts: list[ast.stmt], ctx: _OpContext) -> None:
        for stmt in stmts:
            self._walk(stmt, ctx)

    def _walk(self, node: ast.AST, ctx: _OpContext) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are summarized on their own
        if isinstance(node, ast.Lambda):
            self._walk(node.body, ctx)
            return
        if isinstance(node, ast.If):
            self._walk(node.test, ctx)
            if self.env.is_rank_expr(node.test):
                self.summary.branches.append(RankBranch(node=node, test=node.test))
                then_ctx = replace(
                    ctx,
                    rank_conds=(*ctx.rank_conds, node.test),
                    branch_path=(*ctx.branch_path, (id(node), True)),
                )
                else_ctx = replace(
                    ctx,
                    rank_conds=(*ctx.rank_conds, node.test),
                    branch_path=(*ctx.branch_path, (id(node), False)),
                )
                self._walk_body(node.body, then_ctx)
                self._walk_body(node.orelse, else_ctx)
            else:
                self._walk_body(node.body, ctx)
                self._walk_body(node.orelse, ctx)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._walk(node.iter, ctx)
            body_ctx = ctx
            if self.env.iter_kind(node.iter) != "other":
                body_ctx = replace(ctx, per_rank_loop=node)
            elif self.env.is_rank_expr(node.iter):
                body_ctx = replace(ctx, tainted_loop=node)
            self._walk_body(node.body, body_ctx)
            self._walk_body(node.orelse, ctx)
            return
        if isinstance(node, ast.While):
            self._walk(node.test, ctx)
            body_ctx = (
                replace(ctx, tainted_loop=node)
                if self.env.is_rank_expr(node.test)
                else ctx
            )
            self._walk_body(node.body, body_ctx)
            self._walk_body(node.orelse, ctx)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            body_ctx = ctx
            for item in node.items:
                if _is_step_with_item(item) and isinstance(item.context_expr, ast.Call):
                    name = step_literal(item.context_expr)
                    self._emit_step(item.context_expr, name, ctx)
                    body_ctx = replace(body_ctx, step=name)
                self._walk(item.context_expr, ctx)
            self._walk_body(node.body, body_ctx)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, ctx)
            return
        if isinstance(node, ast.Subscript):
            self._check_view_index(node, ctx)
        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx)

    # -- call handling -------------------------------------------------------

    def _emit_step(self, node: ast.AST, name: str, ctx: _OpContext) -> None:
        self.summary.ops.append(
            CommOp(
                kind="step",
                node=node,
                chain=(),
                on_view=False,
                step=ctx.step,
                step_name=name,
                rank_conds=ctx.rank_conds,
                branch_path=ctx.branch_path,
                per_rank_loop=ctx.per_rank_loop,
                tainted_loop=ctx.tainted_loop,
            )
        )

    def _emit(self, kind: str, node: ast.Call, chain: list[str], ctx: _OpContext,
              *, root: Optional[ast.expr] = None, src: Optional[ast.expr] = None,
              dst: Optional[ast.expr] = None) -> None:
        self.summary.ops.append(
            CommOp(
                kind=kind,
                node=node,
                chain=tuple(chain),
                on_view=self.env.is_view_receiver(chain),
                step=ctx.step,
                root=root,
                src=src,
                dst=dst,
                rank_conds=ctx.rank_conds,
                branch_path=ctx.branch_path,
                per_rank_loop=ctx.per_rank_loop,
                tainted_loop=ctx.tainted_loop,
            )
        )

    def _visit_call(self, node: ast.Call, ctx: _OpContext) -> None:
        chain = comm_call_chain(node)
        if chain is not None:
            op = chain[-1]
            if op == "send":
                src = node.args[0] if len(node.args) >= 1 else None
                dst = node.args[1] if len(node.args) >= 2 else None
                self._emit("send", node, chain, ctx, src=src, dst=dst)
            elif op in ("gather", "bcast", "scatter"):
                self._emit(op, node, chain, ctx, root=_call_root(node))
            else:
                self._emit(op, node, chain, ctx)
        elif barrier_call_chain(node) is not None:
            self._emit("barrier", node, barrier_call_chain(node), ctx)
        elif transfer_call_chain(node) is not None:
            src = node.args[0] if len(node.args) >= 1 else None
            dst = node.args[1] if len(node.args) >= 2 else None
            self._emit("transfer", node, transfer_call_chain(node), ctx,
                       src=src, dst=dst)
        elif _is_runner_run(node):
            name = step_literal(node)
            self._emit_step(node, name, ctx)
            step_ctx = replace(ctx, step=name)
            for i, arg in enumerate(node.args):
                # the runner executes its callable args inside the step
                self._walk(arg, step_ctx if i >= 2 else ctx)
            for kw in node.keywords:
                self._walk(kw.value, step_ctx)
            return
        for arg in node.args:
            self._walk(arg, ctx)
        for kw in node.keywords:
            self._walk(kw.value, ctx)
        if not isinstance(node.func, ast.Name):
            for child in ast.iter_child_nodes(node.func):
                self._walk(child, ctx)

    def _check_view_index(self, node: ast.Subscript, ctx: _OpContext) -> None:
        base = node.value
        base_is_view_result = (
            isinstance(base, ast.Name) and base.id in self.env.view_comm_results
        )
        if isinstance(base, ast.Call):
            chain = comm_call_chain(base)
            base_is_view_result = chain is not None and self.env.is_view_receiver(chain)
        if base_is_view_result and self.env.is_grank_expr(node.slice):
            self.summary.view_index_sites.append(node)


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def summarize_function(fn: FunctionInfo) -> FunctionSummary:
    """Extract the communication summary of one function."""
    env = _EnvBuilder(fn.node).build()
    summary = FunctionSummary(fn=fn, env=env)
    _OpWalker(summary).walk_function()
    return summary


_CACHE_KEY = "protocol-summaries"


def protocol_summaries(project: Project) -> list[FunctionSummary]:
    """Summaries for every function in the project (cached on it)."""
    cached = project.cache.get(_CACHE_KEY)
    if cached is None:
        cached = [summarize_function(fn) for fn in project.functions.values()]
        project.cache[_CACHE_KEY] = cached
    return cached  # type: ignore[return-value]
