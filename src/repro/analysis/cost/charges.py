"""Charge sites and cost contracts — the certifier's trusted base.

The interpreter in :mod:`repro.analysis.cost.interp` walks step bodies
through the call graph and derives I/O bounds from three sources, in
decreasing order of "how much of the proof lives in the walker":

1. **Direct charge sites** — the sanctioned block-I/O primitives
   (:data:`CHARGED_METHODS`): ``BlockFile.read_block`` /
   ``append_block`` / ``read_all``, ``BlockWriter.write``,
   ``RunCursor.take_upto``.  Every other disk mutation in the simulator
   funnels through these, so a call whose name chain ends in one of
   them charges items; the walker multiplies the charge by its derived
   loop bounds.  A charge under a loop with no derivable bound is the
   REP304 condition.

2. **Function contracts** (:data:`CONTRACTS`) — documented closed-form
   bounds for the mid-level engine primitives (polyphase sort, k-way
   merge, sampling, partitioning, redistribution).  Each contract is a
   *model fact*: the formula restates the bound the dynamic auditor
   (:mod:`repro.obs.audit`) enforces empirically for that primitive,
   in the same symbols, so the static derivation and the runtime audit
   agree by construction.  The REP306 rule keeps contracts honest: a
   contracted function must still transitively reach a real charge
   site, otherwise its formula is vacuous (dead bound).

3. **Step contracts** (:data:`STEP_CONTRACTS`) — whole-step bounds for
   the few steps whose cost is receiver-driven and data-dependent in a
   way no sound loop analysis recovers (DeWitt's message routing, the
   recovery path's salvage streaming).  Each carries its justification
   in ``doc`` and is REP306-checked for charge reachability like any
   contract.

All formulas are per-(step, node) *item* I/O in the symbols of
:mod:`repro.analysis.cost.sym` (``l`` = this node's portion, ``r`` =
items received, etc.); ``SLACK`` is the polyphase dummy-run factor the
auditor applies (:data:`repro.obs.audit.POLYPHASE_SLACK`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.audit import POLYPHASE_SLACK

from repro.analysis.cost.sym import (
    Add,
    BitLen,
    Ceil,
    Const,
    Div,
    Expr,
    Max,
    MergeLevels,
    MergePasses,
    Min,
    Mul,
    Sym,
    Top,
)

#: Method names that directly charge disk I/O when called.
#: (``write`` is included for :class:`BlockWriter`; the interpreter
#: charges the written chunk's size when it can derive it.)
CHARGED_METHODS = frozenset(
    {"read_block", "append_block", "read_all", "take_upto", "write"}
)

#: Constructor names whose mere use implies charged writes downstream —
#: used by the REP306 charge-reachability scan, not by the walker.
CHARGED_CONSTRUCTORS = frozenset({"BlockWriter", "BlockReader", "RunCursor"})

SLACK = Const(POLYPHASE_SLACK)

_L = Sym("l")
_P = Sym("p")
_B = Sym("B")
_C = Sym("c")
_G = Sym("g")
_D = Sym("d")
_R = Sym("r")
_CM = Sym("cm")
_N = Sym("n")

_P_MINUS_1 = Add((_P, Const(-1)))


def _poly_cost(size: Expr) -> Expr:
    """Polyphase external sort of ``size`` items: the auditor's step-1
    bound ``SLACK * max(2s(1+passes(s)), 4s)`` (run formation + >=1
    merge pass even when ``s <= M``, dummy-run padding in the slack)."""
    return Mul((
        SLACK,
        Max((
            Mul((Const(2), size, Add((Const(1), MergePasses(size))))),
            Mul((Const(4), size)),
        )),
    ))


def _merge_cost(size: Expr, count: Expr) -> Expr:
    """Multi-pass k-way merge of ``count`` runs totalling ``size``
    items: the auditor's step-5 bound ``SLACK * max(2s(1+passes(s)),
    2s*levels(count)) + count*B`` partial blocks."""
    return Add((
        Mul((
            SLACK,
            Max((
                Mul((Const(2), size, Add((Const(1), MergePasses(size))))),
                Mul((Const(2), size, Max((Const(1), MergeLevels(count))))),
            )),
        )),
        Mul((count, _B)),
    ))


@dataclass(frozen=True)
class Contract:
    """Documented per-invocation cost bound of one engine primitive.

    ``expr(size, count)`` is the charged item I/O on the executing node;
    ``size`` is the symbolic payload of the positional argument at
    ``arg_index`` (``count`` its run/partition count when tracked).
    ``size_out``/``count_out`` describe the result so the walker can
    propagate sizes to downstream calls.  ``sweeps`` counts full
    read+write passes over the step's data in the log-free case — the
    REP303 budget is three per step.
    """

    name: str
    doc: str
    arg_index: int
    expr: Callable[[Expr, Optional[Expr]], Expr]
    size_out: Optional[Callable[[Expr], Expr]] = None
    count_out: Optional[Expr] = None
    sweeps: int = 0


def _c(
    name: str,
    doc: str,
    expr: Callable[[Expr, Optional[Expr]], Expr],
    *,
    arg_index: int = 0,
    size_out: Optional[Callable[[Expr], Expr]] = None,
    count_out: Optional[Expr] = None,
    sweeps: int = 0,
) -> tuple[str, Contract]:
    return name, Contract(
        name=name, doc=doc, arg_index=arg_index, expr=expr,
        size_out=size_out, count_out=count_out, sweeps=sweeps,
    )


#: Function contracts, keyed by the resolved callee's (qual)name tail.
CONTRACTS: dict[str, Contract] = dict([
    _c(
        "polyphase_sort",
        "step-1 engine: run formation (one full pass) + polyphase merge "
        "(>=1 pass; passes(s) when s > M), x1.3 dummy-run slack — "
        "audit.py step '1:local-sort'",
        lambda size, count: _poly_cost(size),
        size_out=lambda size: size,
        sweeps=2,
    ),
    _c(
        "merge_many",
        "step-5 engine: multi-pass k-way merge of `count` runs "
        "totalling `size` items + one partial block per run — "
        "audit.py step '5:final-merge'",
        lambda size, count: _merge_cost(size, count if count is not None else _P),
        size_out=lambda size: size,
        sweeps=1,
    ),
    _c(
        "regular_sample",
        "step-2 sampling: c(p-1)perf[i] regular samples read at block "
        "granularity — audit.py step '2:pivots' (size-independent)",
        lambda size, count: Mul((_C, _P_MINUS_1, _G, _B)),
        sweeps=0,
    ),
    _c(
        "random_sample",
        "step-2 sampling (random flavour): same sample count as the "
        "regular method, floored at one block",
        lambda size, count: Max((_B, Mul((_C, _P_MINUS_1, _G, _B)))),
        sweeps=0,
    ),
    _c(
        "read_samples",
        "sample gather: one block read per distinct sampled block, at "
        "most one per sample and never more than the whole file",
        lambda size, count: Min((
            Add((size, _B)),
            Mul((_C, _P_MINUS_1, _G, _B)),
        )),
        sweeps=0,
    ),
    _c(
        "exact_quantile_pivots",
        "quantile pivot method: distributed counting search; its I/O is "
        "not bounded by the sample formula (the auditor reports it as "
        "informational) — deriving through it yields TOP by design",
        lambda size, count: Top("quantile counting-search I/O has no "
                                "sample-formula bound"),
        sweeps=0,
    ),
    _c(
        "partition_offsets",
        "step-3 binary searches: p-1 joint lower-bound descents, each "
        "probing floor(log2 n_blocks)+1 blocks plus the final cut "
        "block — audit.py step '3:partition' probe term",
        lambda size, count: Mul((
            _P_MINUS_1,
            Add((BitLen(Max((Const(1), Ceil(Div(size, _B))))), Const(1))),
            _B,
        )),
        sweeps=0,
    ),
    _c(
        "materialize_partitions",
        "step-3 materialising copy: reads the sorted portion once, "
        "writes it once (2Q), re-reading at most one boundary block per "
        "cut — audit.py step '3:partition' 2Q term",
        lambda size, count: Add((Mul((Const(2), size)), Mul((_P_MINUS_1, _B)))),
        size_out=lambda size: size,
        count_out=_P,
        sweeps=1,
    ),
    _c(
        "partition_refs",
        "step-3 zero-copy ablation: partition boundaries only, no I/O",
        lambda size, count: Const(0.0),
        size_out=lambda size: size,
        count_out=_P,
        sweeps=0,
    ),
    _c(
        "redistribute",
        "step-4: the sender reads its materialised partitions (size "
        "items); the receiver writes at most the load-balance bound "
        "2*size+d (paper th. 1) plus one partial block per sender — "
        "audit.py step '4:redistribute'",
        lambda size, count: Add((
            size,
            Add((Mul((Const(2), size)), _D)),
            Mul((_P, _B)),
        )),
        arg_index=1,
        size_out=lambda size: Add((Mul((Const(2), size)), _D)),
        count_out=_P,
        sweeps=1,
    ),
])


@dataclass(frozen=True)
class StepContract:
    """A whole-step bound for a step whose cost is receiver-driven."""

    algorithm: str
    step: str
    doc: str
    expr: Expr
    sweeps: int


#: DeWitt's routed runs per node: every sender can flush a final
#: partial message, and each full message holds at least
#: ``max(1, min(cm, (M-2B)/p))`` items (the sender-side cap).
_DEWITT_RUNS = Add((
    Ceil(Div(_R, Max((Const(1),
                      Min((_CM, Div(Add((Sym("M"), Mul((Const(-2), _B)))), _P))))))),
    _P,
))

STEP_CONTRACTS: dict[tuple[str, str], StepContract] = {
    ("dewitt", "2:route"): StepContract(
        algorithm="dewitt",
        step="2:route",
        doc="the sender scans its own portion block-by-block "
            "(ceil(l/B)*B read items); the receiver writes every routed "
            "item exactly once (r written items, block writes charge "
            "actual chunk sizes).  Receiver-side cost depends on the "
            "splitter balance, not on any sender-side loop bound, hence "
            "a step contract.",
        expr=Add((Mul((Ceil(Div(_L, _B)), _B)), _R)),
        sweeps=1,
    ),
    ("dewitt", "3:merge-runs"): StepContract(
        algorithm="dewitt",
        step="3:merge-runs",
        doc="k-way merge of the routed runs: r received items in at "
            "most ceil(r/cap)+p runs (cap = the sender-side message "
            "cap, >= max(1, min(cm, (M-2B)/p))) — the merge_many "
            "contract at (size=r, count=that run bound).",
        expr=_merge_cost(_R, _DEWITT_RUNS),
        sweeps=1,
    ),
    ("external_psrs", "recover:salvage"): StepContract(
        algorithm="external_psrs",
        step="recover:salvage",
        doc="degraded mode (outside Algorithm 1): the buddy streams the "
            "dead node's checkpointed run — at most l+B block-granular "
            "cursor reads and l chunk writes, + one partial block.",
        expr=Add((Mul((Const(2), _L)), Mul((Const(2), _B)))),
        sweeps=1,
    ),
    ("external_psrs", "recover:remerge"): StepContract(
        algorithm="external_psrs",
        step="recover:remerge",
        doc="degraded mode (outside Algorithm 1): the buddy re-merges "
            "its own run with the salvaged one; after repeated failures "
            "the survivor may hold up to the whole input, so the "
            "merge_many contract is taken at (size=n, count=2).",
        expr=_merge_cost(_N, Const(2)),
        sweeps=1,
    ),
}


def contract_for(callee_name: str) -> Optional[Contract]:
    """The function contract for a resolved callee name, if any."""
    return CONTRACTS.get(callee_name)


def step_contract_for(algorithm: str, step: str) -> Optional[StepContract]:
    """The whole-step contract for (algorithm, step), if any."""
    return STEP_CONTRACTS.get((algorithm, step))
