"""Small symbolic algebra for I/O-cost expressions.

The cost interpreter (:mod:`repro.analysis.cost.interp`) derives, per
(algorithm, step), a closed-form upper bound on charged item I/O per
node.  Expressions are trees over the model symbols

=======  ====================================================================
symbol   meaning
=======  ====================================================================
``n``    total input size, in items
``p``    number of cluster nodes
``B``    PDM block size, in items
``M``    per-node internal memory, in items
``c``    the oversampling factor (``PSRSConfig.oversample``)
``g``    this node's perf value ``perf[i]``
``G``    the perf-vector total ``sum(perf)``
``d``    the duplicate count (multiplicity of the most duplicated key)
``l``    this node's portion ``l_i`` (its performance-proportional share)
``r``    items received by this node in a routing step (``<= n``)
``cm``   the redistribution message size, in items
=======  ====================================================================

plus ``ceil``, ``max``/``min``, ``bitlen`` (``int.bit_length``), and two
model-aware operators that close over ``M`` and ``B`` at evaluation
time: ``passes(x)`` — the polyphase/multiway merge pass count
:meth:`repro.pdm.model.PDMConfig.merge_passes` — and ``levels(x)`` — the
k-way merge depth over ``x`` runs, :func:`repro.obs.audit._merge_levels`.
Both reproduce those functions *bit for bit* (including the
float-``log`` rounding) so a statically derived bound and the dynamic
auditor agree exactly on every concrete substitution.

``Top`` is the explicit unbounded element: it absorbs through ``+``,
``*`` (except by a literal zero) and ``max``, evaluates to ``inf``, and
carries the provenance the REP302/REP304 rules report.

The algebra is intentionally tiny: :func:`simplify` does flattening,
constant folding and absorption only — enough to make emitted
expressions readable and stable — and ordering questions are settled
numerically by :func:`dominates`, which compares two expressions over a
deterministic grid of valid model instantiations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence, Union

#: Names every evaluation environment must bind (see the table above).
SYMBOLS: tuple[str, ...] = (
    "n", "p", "B", "M", "c", "g", "G", "d", "l", "r", "cm",
)


class CostExprError(ValueError):
    """Malformed expression (bad symbol, bad serialized form)."""


@dataclass(frozen=True)
class Expr:
    """Base class of all cost-expression nodes."""

    def eval(self, env: Mapping[str, float]) -> float:
        raise NotImplementedError  # pragma: no cover - abstract

    def children(self) -> tuple["Expr", ...]:
        return ()

    def render(self) -> str:
        raise NotImplementedError  # pragma: no cover - abstract

    def to_dict(self) -> dict[str, object]:
        raise NotImplementedError  # pragma: no cover - abstract


@dataclass(frozen=True)
class Const(Expr):
    value: float

    def eval(self, env: Mapping[str, float]) -> float:
        return float(self.value)

    def render(self) -> str:
        v = self.value
        if float(v).is_integer():
            return str(int(v))
        return f"{v:g}"

    def to_dict(self) -> dict[str, object]:
        return {"op": "const", "value": self.value}


@dataclass(frozen=True)
class Sym(Expr):
    name: str

    def __post_init__(self) -> None:
        if self.name not in SYMBOLS:
            raise CostExprError(f"unknown cost symbol {self.name!r}")

    def eval(self, env: Mapping[str, float]) -> float:
        try:
            return float(env[self.name])
        except KeyError as exc:
            raise CostExprError(f"environment lacks symbol {self.name!r}") from exc

    def render(self) -> str:
        return self.name

    def to_dict(self) -> dict[str, object]:
        return {"op": "sym", "name": self.name}


@dataclass(frozen=True)
class Top(Expr):
    """The unbounded element, with provenance for REP302/REP304."""

    reason: str = ""

    def eval(self, env: Mapping[str, float]) -> float:
        return math.inf

    def render(self) -> str:
        return "TOP" if not self.reason else f"TOP({self.reason})"

    def to_dict(self) -> dict[str, object]:
        return {"op": "top", "reason": self.reason}


def _render_args(args: Sequence[Expr], sep: str) -> str:
    return sep.join(a.render() for a in args)


@dataclass(frozen=True)
class Add(Expr):
    args: tuple[Expr, ...]

    def eval(self, env: Mapping[str, float]) -> float:
        return sum(a.eval(env) for a in self.args)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def render(self) -> str:
        return "(" + _render_args(self.args, " + ") + ")"

    def to_dict(self) -> dict[str, object]:
        return {"op": "add", "args": [a.to_dict() for a in self.args]}


@dataclass(frozen=True)
class Mul(Expr):
    args: tuple[Expr, ...]

    def eval(self, env: Mapping[str, float]) -> float:
        out = 1.0
        for a in self.args:
            out *= a.eval(env)
        return out

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def render(self) -> str:
        return _render_args(self.args, "*")

    def to_dict(self) -> dict[str, object]:
        return {"op": "mul", "args": [a.to_dict() for a in self.args]}


@dataclass(frozen=True)
class Div(Expr):
    num: Expr
    den: Expr

    def eval(self, env: Mapping[str, float]) -> float:
        return self.num.eval(env) / self.den.eval(env)

    def children(self) -> tuple[Expr, ...]:
        return (self.num, self.den)

    def render(self) -> str:
        return f"{self.num.render()}/{self.den.render()}"

    def to_dict(self) -> dict[str, object]:
        return {"op": "div", "num": self.num.to_dict(), "den": self.den.to_dict()}


@dataclass(frozen=True)
class Ceil(Expr):
    arg: Expr

    def eval(self, env: Mapping[str, float]) -> float:
        v = self.arg.eval(env)
        if math.isinf(v):
            return v
        return float(math.ceil(v))

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def render(self) -> str:
        return f"ceil({self.arg.render()})"

    def to_dict(self) -> dict[str, object]:
        return {"op": "ceil", "arg": self.arg.to_dict()}


@dataclass(frozen=True)
class Max(Expr):
    args: tuple[Expr, ...]

    def eval(self, env: Mapping[str, float]) -> float:
        return max(a.eval(env) for a in self.args)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def render(self) -> str:
        return "max(" + _render_args(self.args, ", ") + ")"

    def to_dict(self) -> dict[str, object]:
        return {"op": "max", "args": [a.to_dict() for a in self.args]}


@dataclass(frozen=True)
class Min(Expr):
    args: tuple[Expr, ...]

    def eval(self, env: Mapping[str, float]) -> float:
        return min(a.eval(env) for a in self.args)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def render(self) -> str:
        return "min(" + _render_args(self.args, ", ") + ")"

    def to_dict(self) -> dict[str, object]:
        return {"op": "min", "args": [a.to_dict() for a in self.args]}


@dataclass(frozen=True)
class BitLen(Expr):
    """``int(x).bit_length()`` — the step-3 binary-search probe depth."""

    arg: Expr

    def eval(self, env: Mapping[str, float]) -> float:
        v = self.arg.eval(env)
        if math.isinf(v):
            return v
        return float(int(max(0.0, v)).bit_length())

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def render(self) -> str:
        return f"bitlen({self.arg.render()})"

    def to_dict(self) -> dict[str, object]:
        return {"op": "bitlen", "arg": self.arg.to_dict()}


def merge_order(env: Mapping[str, float]) -> int:
    """``max(2, floor(M/B) - 1)`` — :meth:`PDMConfig.merge_order`."""
    m = int(env["M"] // env["B"])
    return max(2, m - 1)


@dataclass(frozen=True)
class MergePasses(Expr):
    """Merge passes over ``x`` items: :meth:`PDMConfig.merge_passes`.

    Zero when ``x <= M``; otherwise ``max(1, ceil(log_k(ceil(x / M))))``
    with ``k = merge_order(M, B)`` — evaluated with the same
    float-``log`` arithmetic as the runtime model, so static and
    dynamic bounds agree exactly.
    """

    arg: Expr

    def eval(self, env: Mapping[str, float]) -> float:
        v = self.arg.eval(env)
        if math.isinf(v):
            return v
        M = float(env["M"])
        if v <= M:
            return 0.0
        n_runs = math.ceil(v / M)
        return float(max(1, math.ceil(math.log(n_runs, merge_order(env)))))

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def render(self) -> str:
        return f"passes({self.arg.render()})"

    def to_dict(self) -> dict[str, object]:
        return {"op": "passes", "arg": self.arg.to_dict()}


@dataclass(frozen=True)
class MergeLevels(Expr):
    """k-way merge depth over ``x`` runs: :func:`repro.obs.audit._merge_levels`."""

    arg: Expr

    def eval(self, env: Mapping[str, float]) -> float:
        v = self.arg.eval(env)
        if math.isinf(v):
            return v
        if v <= 1:
            return 0.0
        return float(max(1, math.ceil(math.log(v, merge_order(env)))))

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def render(self) -> str:
        return f"levels({self.arg.render()})"

    def to_dict(self) -> dict[str, object]:
        return {"op": "levels", "arg": self.arg.to_dict()}


#: Convenience zero/one.
ZERO = Const(0.0)
ONE = Const(1.0)


def add(*args: Expr) -> Expr:
    return simplify(Add(tuple(args)))


def mul(*args: Expr) -> Expr:
    return simplify(Mul(tuple(args)))


def emax(*args: Expr) -> Expr:
    return simplify(Max(tuple(args)))


def emin(*args: Expr) -> Expr:
    return simplify(Min(tuple(args)))


def ceil(arg: Expr) -> Expr:
    return simplify(Ceil(arg))


# --------------------------------------------------------------------------
# Simplification
# --------------------------------------------------------------------------


def _flatten(kind: type, args: Sequence[Expr]) -> list[Expr]:
    out: list[Expr] = []
    for a in args:
        if isinstance(a, kind):
            out.extend(a.args)  # type: ignore[attr-defined]
        else:
            out.append(a)
    return out


def simplify(expr: Expr) -> Expr:
    """Flatten/fold/absorb, preserving the value on every environment.

    The transformation set is deliberately conservative: nested
    ``Add``/``Mul``/``Max``/``Min`` flatten, literal constants fold,
    identity elements drop, ``Top`` absorbs (except under a literal
    zero factor), ``ceil`` collapses over ``ceil``.  The hypothesis
    soundness property in ``tests/test_analysis_cost.py`` checks
    ``simplify(e)`` and ``e`` agree on random substitutions.
    """
    if isinstance(expr, Add):
        args = [simplify(a) for a in _flatten(Add, [simplify(a) for a in expr.args])]
        if any(isinstance(a, Top) for a in args):
            return next(a for a in args if isinstance(a, Top))
        const = sum(a.value for a in args if isinstance(a, Const))
        rest = [a for a in args if not isinstance(a, Const)]
        if const != 0.0:
            rest.append(Const(const))
        if not rest:
            return ZERO
        if len(rest) == 1:
            return rest[0]
        return Add(tuple(rest))
    if isinstance(expr, Mul):
        args = [simplify(a) for a in _flatten(Mul, [simplify(a) for a in expr.args])]
        if any(isinstance(a, Const) and a.value == 0.0 for a in args):
            return ZERO
        if any(isinstance(a, Top) for a in args):
            return next(a for a in args if isinstance(a, Top))
        const = 1.0
        rest = []
        for a in args:
            if isinstance(a, Const):
                const *= a.value
            else:
                rest.append(a)
        if const != 1.0:
            rest.insert(0, Const(const))
        if not rest:
            return ONE
        if len(rest) == 1:
            return rest[0]
        return Mul(tuple(rest))
    if isinstance(expr, Div):
        num, den = simplify(expr.num), simplify(expr.den)
        if isinstance(num, Top):
            return num
        if isinstance(num, Const) and num.value == 0.0:
            return ZERO
        if isinstance(den, Const) and den.value == 1.0:
            return num
        if isinstance(num, Const) and isinstance(den, Const) and den.value != 0.0:
            return Const(num.value / den.value)
        return Div(num, den)
    if isinstance(expr, Ceil):
        arg = simplify(expr.arg)
        if isinstance(arg, Top):
            return arg
        if isinstance(arg, Const):
            return Const(float(math.ceil(arg.value)))
        if isinstance(arg, Ceil):
            return arg
        return Ceil(arg)
    if isinstance(expr, (Max, Min)):
        kind = type(expr)
        args = [simplify(a) for a in _flatten(kind, [simplify(a) for a in expr.args])]
        if isinstance(expr, Max) and any(isinstance(a, Top) for a in args):
            return next(a for a in args if isinstance(a, Top))
        if isinstance(expr, Min):
            args = [a for a in args if not isinstance(a, Top)] or args
        consts = [a for a in args if isinstance(a, Const)]
        rest = [a for a in args if not isinstance(a, Const)]
        if consts:
            fold = max(c.value for c in consts) if kind is Max else min(
                c.value for c in consts
            )
            rest.append(Const(fold))
        uniq: list[Expr] = []
        for a in rest:
            if a not in uniq:
                uniq.append(a)
        if not uniq:
            return ZERO
        if len(uniq) == 1:
            return uniq[0]
        return kind(tuple(uniq))
    if isinstance(expr, BitLen):
        arg = simplify(expr.arg)
        if isinstance(arg, Top):
            return arg
        if isinstance(arg, Const):
            return Const(float(int(max(0.0, arg.value)).bit_length()))
        return BitLen(arg)
    if isinstance(expr, MergePasses):
        return MergePasses(simplify(expr.arg))
    if isinstance(expr, MergeLevels):
        return MergeLevels(simplify(expr.arg))
    return expr


def iter_nodes(expr: Expr) -> Iterator[Expr]:
    """Pre-order walk of an expression tree."""
    yield expr
    for child in expr.children():
        yield from iter_nodes(child)


def find_tops(expr: Expr) -> list[Top]:
    """All ``Top`` leaves of an expression (empty = bounded)."""
    return [node for node in iter_nodes(expr) if isinstance(node, Top)]


# --------------------------------------------------------------------------
# Serialization
# --------------------------------------------------------------------------

_ExprDict = Mapping[str, object]


def from_dict(data: _ExprDict) -> Expr:
    """Inverse of :meth:`Expr.to_dict` (used by the cost baseline/cache)."""
    if not isinstance(data, Mapping) or "op" not in data:
        raise CostExprError(f"not a cost expression: {data!r}")
    op = data["op"]
    try:
        if op == "const":
            return Const(float(data["value"]))  # type: ignore[arg-type]
        if op == "sym":
            return Sym(str(data["name"]))
        if op == "top":
            return Top(str(data.get("reason", "")))
        if op in ("add", "mul", "max", "min"):
            args = tuple(from_dict(a) for a in data["args"])  # type: ignore[union-attr]
            cls = {"add": Add, "mul": Mul, "max": Max, "min": Min}[str(op)]
            return cls(args)
        if op == "div":
            return Div(from_dict(data["num"]), from_dict(data["den"]))  # type: ignore[arg-type]
        if op in ("ceil", "bitlen", "passes", "levels"):
            arg = from_dict(data["arg"])  # type: ignore[arg-type]
            cls1 = {"ceil": Ceil, "bitlen": BitLen, "passes": MergePasses,
                    "levels": MergeLevels}[str(op)]
            return cls1(arg)
    except (KeyError, TypeError, ValueError) as exc:
        raise CostExprError(f"malformed cost expression: {exc}") from exc
    raise CostExprError(f"unknown cost expression op {op!r}")


# --------------------------------------------------------------------------
# Dominance over the valid model domain
# --------------------------------------------------------------------------

#: Relative slack for numeric dominance comparisons.
_REL_TOL = 1e-9


def sample_envs() -> list[dict[str, float]]:
    """Deterministic grid of valid model instantiations.

    Covers the simulator's envelope corners (tiny blocks / tight memory /
    large p / skewed perf) — the same axes the scenario fuzzer mutates.
    Every environment satisfies ``M >= 3B`` (the polyphase floor),
    ``l = n*g/G`` and ``r <= n``.
    """
    envs: list[dict[str, float]] = []
    for B in (16.0, 256.0):
        for m_blocks in (3.0, 8.0, 64.0):
            M = B * m_blocks
            for p in (2.0, 4.0, 16.0):
                for g, G_extra in ((1.0, 0.0), (4.0, 0.0), (8.0, 8.0)):
                    G = g * p + G_extra
                    for n in (1024.0, 131072.0, 1048576.0):
                        l = n * g / G
                        for d in (0.0, B):
                            envs.append({
                                "n": n, "p": p, "B": B, "M": M,
                                "c": 4.0, "g": g, "G": G, "d": d,
                                "l": l, "r": n, "cm": 8.0 * B,
                            })
    return envs


def dominates(
    lower: Expr, upper: Expr, envs: Optional[Sequence[Mapping[str, float]]] = None
) -> Optional[dict[str, float]]:
    """Check ``lower <= upper`` over the sampled domain.

    Returns ``None`` when dominance holds everywhere, else the first
    environment (as a plain dict) where it fails — the counterexample
    REP301/REP305 report.
    """
    for env in envs if envs is not None else sample_envs():
        lo, hi = lower.eval(env), upper.eval(env)
        if math.isinf(hi):
            continue
        if lo > hi * (1.0 + _REL_TOL) + 1e-6:
            return dict(env)
    return None


ExprLike = Union[Expr, float, int]


def as_expr(value: ExprLike) -> Expr:
    """Coerce a number to a :class:`Const` (identity on expressions)."""
    if isinstance(value, Expr):
        return value
    return Const(float(value))
