"""Symbolic I/O-cost certification: the rules REP301..REP306.

Layered on the flow engine's project model
(:mod:`repro.analysis.flow.project`), this subpackage abstract-interprets
each registered algorithm entry point into symbolic per-(step, node)
I/O bounds (:mod:`.interp`, over the algebra of :mod:`.sym` and the
contract base of :mod:`.charges`) and derives six rules from it
(:mod:`.rules`):

=======  ================================  ===============================
code     name                              invariant
=======  ================================  ===============================
REP301   derived-bound-exceeds-paper       derived <= the paper's step
                                           formula (:mod:`.paper`)
REP302   unbounded-io-in-step              no TOP escapes to a step bound
REP303   extra-pass                        <= 3 passes over a step's data
REP304   io-outside-derivable-loop-bound   every charge under a derivable
                                           loop bound
REP305   bound-regression                  derived <= the checked-in
                                           cost-baseline.json
REP306   dead-bound                        every formula backed by a real
                                           charge site
=======  ================================  ===============================

Entry points: :func:`analyze_cost` (wired into ``repro lint --cost``),
:func:`emit_costs` (the ``--emit-costs`` per-algorithm JSON),
:func:`baseline_payload` (``--write-cost-baseline``), and the dynamic
closing of the loop in :mod:`.certify` (``repro audit --certify``:
measured <= derived <= paper).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.engine import (
    ALL_RULES as _NOQA_ALL,
    AnalysisError,
    AnalysisReport,
    FileReport,
    Suppression,
    parse_noqa,
)
from repro.analysis.flow import load_project
from repro.analysis.flow.project import Project

from repro.analysis.cost.certify import (
    CertifyCaseResult,
    CertifyReport,
    CertifyRow,
    certify_bench,
    certify_cells,
    certify_corpus,
    certify_events,
    node_env,
    static_step_exprs,
)
from repro.analysis.cost.interp import (
    AlgorithmCosts,
    CostInterpreter,
    StepCost,
    derive_costs,
)
from repro.analysis.cost.rules import (
    COST_BASELINE_NAME,
    BoundRegressionRule,
    CostRule,
    DeadBoundRule,
    DerivedExceedsPaperRule,
    ExtraPassRule,
    UnboundedIORule,
    UnboundedLoopIORule,
)

#: version of the cost engine, reported in the JSON payload and keyed
#: into the whole-project lint cache
COST_ENGINE_VERSION = "1.0"

#: all cost rules, in code order — the registry the CLI and tests use
COST_RULES: tuple[CostRule, ...] = (
    DerivedExceedsPaperRule(),
    UnboundedIORule(),
    ExtraPassRule(),
    UnboundedLoopIORule(),
    BoundRegressionRule(),
    DeadBoundRule(),
)

COST_RULES_BY_CODE: dict[str, CostRule] = {r.code: r for r in COST_RULES}

__all__ = [
    "COST_BASELINE_NAME",
    "COST_ENGINE_VERSION",
    "COST_RULES",
    "COST_RULES_BY_CODE",
    "AlgorithmCosts",
    "CertifyCaseResult",
    "CertifyReport",
    "CertifyRow",
    "CostInterpreter",
    "CostRule",
    "StepCost",
    "analyze_cost",
    "analyze_cost_source",
    "baseline_payload",
    "certify_bench",
    "certify_cells",
    "certify_corpus",
    "certify_events",
    "derive_costs",
    "emit_costs",
    "get_cost_rules",
    "node_env",
    "static_step_exprs",
    "write_cost_baseline",
]


def get_cost_rules(
    codes: Sequence[str] | None = None,
    baseline_path: Optional[Path] = None,
) -> tuple[CostRule, ...]:
    """Resolve ``--rule`` selections against the cost registry.

    ``baseline_path`` points REP305 at an explicit ``cost-baseline.json``
    (defaults to looking in the invocation directory).
    """
    registry = COST_RULES if baseline_path is None else tuple(
        BoundRegressionRule(baseline_path)
        if isinstance(rule, BoundRegressionRule) else rule
        for rule in COST_RULES
    )
    if not codes:
        return registry
    by_code = {r.code: r for r in registry}
    out = []
    for code in codes:
        rule = by_code.get(code.upper())
        if rule is None:
            raise AnalysisError(
                f"unknown cost rule {code!r}; have {', '.join(sorted(by_code))}"
            )
        out.append(rule)
    return tuple(out)


def _run_project(
    project: Project, rules: Sequence[CostRule]
) -> AnalysisReport:
    """Run cost rules over a built project, honouring noqa directives."""
    by_display: dict[str, FileReport] = {}
    noqa_by_display: dict[str, dict[int, dict[str, str]]] = {}
    for module in project.modules.values():
        by_display[module.display_path] = FileReport(path=module.display_path)
        noqa_by_display[module.display_path] = parse_noqa(module.lines)
    for rule in rules:
        for finding in rule.check_project(project):
            report = by_display[finding.path]
            directives = noqa_by_display[finding.path].get(finding.line)
            if directives is not None and (
                _NOQA_ALL in directives or finding.rule in directives
            ):
                reason = directives.get(
                    finding.rule, directives.get(_NOQA_ALL, "")
                )
                report.suppressed.append(Suppression(finding, reason))
            else:
                report.findings.append(finding)
    report_out = AnalysisReport()
    for file_report in by_display.values():
        file_report.findings.sort()
        report_out.files.append(file_report)
    return report_out


def analyze_cost(
    paths: Iterable[str | Path],
    rules: Sequence[CostRule] | None = None,
    project: Project | None = None,
) -> AnalysisReport:
    """Build the project model for ``paths`` and run the cost rules."""
    if project is None:
        project = load_project(paths)
    return _run_project(project, COST_RULES if rules is None else rules)


def analyze_cost_source(
    source: str,
    path: str,
    rules: Sequence[CostRule] | None = None,
) -> FileReport:
    """Cost-analyse one module given as text (the test-fixture entry).

    The module is its own one-file project, exactly like
    :func:`repro.analysis.protocol.analyze_protocol_source`.
    """
    project = Project.from_sources([(source, path, path)])
    report = _run_project(project, COST_RULES if rules is None else rules)
    for file_report in report.files:
        if file_report.path == path:
            return file_report
    return FileReport(path=path)  # pragma: no cover - defensive


def emit_costs(project: Project, out_dir: str | Path) -> list[Path]:
    """Write ``costs-<algo>.json`` per algorithm; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for algo, costs in sorted(derive_costs(project).items()):
        payload = dict(costs.to_dict())
        payload["cost_engine_version"] = COST_ENGINE_VERSION
        path = out / f"costs-{algo}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written


def baseline_payload(project: Project) -> dict[str, object]:
    """The ``cost-baseline.json`` payload pinning every derived bound."""
    algorithms: dict[str, dict[str, object]] = {}
    for algo, costs in sorted(derive_costs(project).items()):
        algorithms[algo] = {
            name: {
                "expr": step.expr.to_dict(),
                "rendered": step.expr.render(),
            }
            for name, step in sorted(costs.steps.items())
        }
    return {
        "version": 1,
        "cost_engine_version": COST_ENGINE_VERSION,
        "algorithms": algorithms,
    }


def write_cost_baseline(project: Project, path: str | Path) -> Path:
    """Write the regression baseline REP305 compares against."""
    out = Path(path)
    out.write_text(
        json.dumps(baseline_payload(project), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return out
