"""Abstract interpreter: symbolic per-(step, node) I/O bounds.

:class:`CostInterpreter` symbolically executes one registered algorithm
entry point (the same ``KNOWN_ENTRIES`` the protocol schema extractor
uses) over the flow engine's :class:`~repro.analysis.flow.project.Project`
call graph, and derives a closed-form upper bound on charged item I/O
per (step, node) in the model symbols of :mod:`repro.analysis.cost.sym`.

The derivation is a single forward walk of the entry function:

* **values** — scalar locals (``p = cluster.p``, ``want = max(1, ...)``)
  are tracked as symbolic expressions, so loop counts like DeWitt's
  sampled-block bound come straight out of the code;
* **sizes** — collection-typed locals carry a symbolic *per-node
  payload* (``inputs`` starts at ``l``, redistribution's ``size_out``
  turns it into ``2l + d``), threaded through assignments,
  comprehensions, subscripts and ``.append``;
* **loops** — a loop over the node list contributes its body once (the
  derived bound is the per-node view); a counted loop multiplies by its
  derived count; a loop with no derivable count and a non-zero body
  widens to :class:`~repro.analysis.cost.sym.Top` and records the REP304
  anchors;
* **charges** — calls to the sanctioned block-I/O primitives
  (:data:`~repro.analysis.cost.charges.CHARGED_METHODS`) charge
  directly; calls to contracted engine primitives
  (:data:`~repro.analysis.cost.charges.CONTRACTS`) charge their
  documented formula; a few receiver-driven steps take a whole-step
  contract (:data:`~repro.analysis.cost.charges.STEP_CONTRACTS`);
* **steps** — ``with cluster.step("...")`` bodies and callables
  registered through a ``StepRunner.run(view, "...", fn)`` call are
  attributed to their step name (f-string names widen to a ``*``
  wildcard, e.g. hyperquicksort's ``level-*``).

Branches that fold under the default configuration
(:data:`_CONFIG_DEFAULTS`) take only the live arm; symbolic branches
take the ``max`` of both arms and mark steps registered inside them
``optional``.  Call inlining is depth- and recursion-guarded: a guarded
call that can transitively reach a charge site widens to ``Top``
(recorded as a REP302 escape), one that cannot costs zero.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.analysis.engine import AnalysisError
from repro.analysis.flow.project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    _is_runner_run,
    _is_step_with_item,
    name_chain,
)
from repro.analysis.protocol.schema import KNOWN_ENTRIES

from repro.analysis.cost.charges import (
    CHARGED_CONSTRUCTORS,
    CHARGED_METHODS,
    contract_for,
    step_contract_for,
)
from repro.analysis.cost.sym import (
    ONE,
    ZERO,
    Const,
    Div,
    Expr,
    Sym,
    Top,
    add,
    ceil,
    emax,
    emin,
    find_tops,
    mul,
    simplify,
)

#: Inline depth guard (parity with the schema extractor's discovery depth).
MAX_DEPTH = 8

#: Default configuration the certifier derives under — the paper-faithful
#: settings of ``PSRSConfig``/``DeWittConfig``.  Branches testing these
#: attributes fold to the live arm; anything else stays symbolic.
_CONFIG_DEFAULTS: dict[str, object] = {
    "pivot_method": "regular",
    "materialize_partitions": True,
    "run_policy": "load",
    "engine": "vector",
}


def _is_zero(expr: Expr) -> bool:
    return isinstance(expr, Const) and expr.value == 0.0


@dataclass
class VarInfo:
    """What the interpreter knows about one bound name.

    ``size`` is the symbolic per-node payload of a collection (items),
    ``count`` its element count, ``value`` a scalar's symbolic value.
    ``kind`` tags the handful of structurally special objects (the
    cluster/view, the perf vector, the node list, zip/enumerate/range
    values); ``parts`` carries per-position element info for tuple-ish
    values; ``fn``/``closure`` bind locally defined functions.
    """

    size: Optional[Expr] = None
    count: Optional[Expr] = None
    value: Optional[Expr] = None
    kind: str = ""
    fn: Optional[FunctionInfo] = None
    closure: Optional["Frame"] = None
    parts: Optional[list["VarInfo"]] = None


class Frame:
    """A lexical scope: name -> :class:`VarInfo`, chained to its parent."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["Frame"] = None) -> None:
        self.vars: dict[str, VarInfo] = {}
        self.parent = parent

    def lookup(self, name: str) -> Optional[VarInfo]:
        frame: Optional[Frame] = self
        while frame is not None:
            if name in frame.vars:
                return frame.vars[name]
            frame = frame.parent
        return None

    def bind(self, name: str, info: VarInfo) -> None:
        self.vars[name] = info


@dataclass
class _IterSpec:
    """How a loop iterable behaves: element shape, node-ness, count."""

    element: VarInfo
    per_node: bool = False
    count: Optional[Expr] = None


@dataclass
class _Ctx:
    """Accumulator for one step (or the outside-any-step remainder)."""

    name: str
    lineno: int
    sweeps: int = 0
    charge_lines: list[int] = field(default_factory=list)
    unbounded: list[tuple[int, str]] = field(default_factory=list)
    escapes: list[tuple[int, str]] = field(default_factory=list)
    contracts_used: list[str] = field(default_factory=list)
    contracted: bool = False
    note: str = ""


@dataclass(frozen=True)
class StepCost:
    """The derived bound and provenance for one (algorithm, step)."""

    name: str
    expr: Expr
    sweeps: int
    lineno: int
    module: ModuleInfo
    node: ast.AST
    contracted: bool
    contracts_used: tuple[str, ...]
    charge_lines: tuple[int, ...]
    unbounded: tuple[tuple[int, str], ...]
    escapes: tuple[tuple[int, str], ...]
    may_repeat: bool
    optional: bool
    reaches_charge: bool
    note: str = ""

    @property
    def bounded(self) -> bool:
        """True when the derived expression contains no ``Top``."""
        return not find_tops(self.expr)

    def to_dict(self) -> dict[str, object]:
        return {
            "step": self.name,
            "expr": self.expr.to_dict(),
            "rendered": self.expr.render(),
            "sweeps": self.sweeps,
            "line": self.lineno,
            "contracted": self.contracted,
            "contracts": list(self.contracts_used),
            "charge_lines": list(self.charge_lines),
            "may_repeat": self.may_repeat,
            "optional": self.optional,
            "reaches_charge": self.reaches_charge,
            "note": self.note,
        }


@dataclass(frozen=True)
class AlgorithmCosts:
    """All derived step bounds of one registered entry algorithm."""

    algorithm: str
    entry_key: str
    entry: FunctionInfo
    steps: dict[str, StepCost]
    outside: StepCost

    def to_dict(self) -> dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "entry": self.entry_key,
            "steps": {name: sc.to_dict() for name, sc in self.steps.items()},
            "outside": self.outside.to_dict(),
        }


@dataclass(frozen=True)
class _Walk:
    """Immutable walk state threaded through the interpreter."""

    frame: Frame
    ctx: _Ctx
    depth: int
    visited: frozenset[str]
    ret: tuple[list[VarInfo], ...]  # one-slot mutable return holder
    in_loop: bool = False
    per_node: bool = False
    optional: bool = False


def _literal_step_name(node: ast.expr) -> str:
    """Step-name literal; f-string holes widen to ``*`` (``level-*``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            else:
                parts.append("*")
        return "".join(parts)
    return "*"


def _seed_param(name: str) -> VarInfo:
    """Symbolic binding for an entry-point parameter, by name."""
    if name in ("cluster", "view"):
        return VarInfo(kind="cluster")
    if name in ("perf", "aperf"):
        return VarInfo(kind="perf")
    if name == "portions":
        return VarInfo(size=Sym("l"), count=Sym("p"), kind="portions")
    if name in ("inputs", "files", "sorted_files", "data"):
        return VarInfo(size=Sym("l"), count=Sym("p"), kind="files")
    if name in ("config", "cfg"):
        return VarInfo(kind="config")
    if name == "oversample":
        return VarInfo(value=Sym("c"))
    if name == "block_items":
        return VarInfo(value=Sym("B"))
    if name == "message_items":
        return VarInfo(value=Sym("cm"))
    if name == "rng":
        return VarInfo(kind="rng")
    if name == "runner":
        return VarInfo(kind="runner")
    return VarInfo()


class CostInterpreter:
    """Derive :class:`AlgorithmCosts` for one registered entry point."""

    def __init__(self, project: Project, algorithm: str, entry_key: str) -> None:
        entry = project.functions.get(entry_key)
        if entry is None:
            raise AnalysisError(
                f"cost entry {entry_key!r} ({algorithm}) not found in project"
            )
        self.project = project
        self.algorithm = algorithm
        self.entry_key = entry_key
        self.entry = entry
        self.steps: dict[str, StepCost] = {}
        self._callee_by_node = callee_map(project)
        self._fn_by_def: dict[int, FunctionInfo] = {
            id(fn.node): fn for fn in project.functions.values()
        }

    # -- public entry ---------------------------------------------------------

    def derive(self) -> AlgorithmCosts:
        frame = Frame()
        args = self.entry.node.args
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            frame.bind(a.arg, _seed_param(a.arg))
        outside = _Ctx(name="<outside>", lineno=self.entry.node.lineno)
        w = _Walk(
            frame=frame,
            ctx=outside,
            depth=0,
            visited=frozenset({self.entry.key}),
            ret=([VarInfo()],),
        )
        cost = self._stmts(self.entry.node.body, w)
        outside_cost = self._finish(
            outside, simplify(cost), self.entry.node, may_repeat=False,
            optional=False, reaches=bool(outside.charge_lines),
        )
        return AlgorithmCosts(
            algorithm=self.algorithm,
            entry_key=self.entry_key,
            entry=self.entry,
            steps=self.steps,
            outside=outside_cost,
        )

    # -- statements -----------------------------------------------------------

    def _stmts(self, body: Sequence[ast.stmt], w: _Walk) -> Expr:
        parts = [self._stmt(stmt, w) for stmt in body]
        return add(*parts) if parts else ZERO

    def _stmt(self, node: ast.stmt, w: _Walk) -> Expr:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = self._fn_by_def.get(id(node))
            if fn is not None:
                w.frame.bind(
                    node.name, VarInfo(kind="function", fn=fn, closure=w.frame)
                )
            return ZERO
        if isinstance(node, ast.Return):
            if node.value is None:
                return ZERO
            cost, info = self._eval(node.value, w)
            w.ret[0][0] = info
            return cost
        if isinstance(node, ast.Assign):
            cost, info = self._eval(node.value, w)
            for target in node.targets:
                self._bind_target(target, info, w.frame)
            return cost
        if isinstance(node, ast.AnnAssign):
            if node.value is None:
                return ZERO
            cost, info = self._eval(node.value, w)
            self._bind_target(node.target, info, w.frame)
            return cost
        if isinstance(node, ast.AugAssign):
            cost, _info = self._eval(node.value, w)
            if isinstance(node.target, ast.Name):
                prev = w.frame.lookup(node.target.id)
                val = self._value_of(node.value, w.frame)
                if (
                    prev is not None
                    and prev.value is not None
                    and val is not None
                    and isinstance(node.op, ast.Add)
                ):
                    w.frame.bind(
                        node.target.id, VarInfo(value=add(prev.value, val))
                    )
                else:
                    w.frame.bind(node.target.id, VarInfo())
            return cost
        if isinstance(node, ast.Expr):
            return self._eval(node.value, w)[0]
        if isinstance(node, ast.If):
            return self._if(node, w)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return self._for(node, w)
        if isinstance(node, ast.While):
            return self._while(node, w)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return self._with(node, w)
        if isinstance(node, ast.Try):
            cost = self._stmts(node.body, w)
            wopt = replace(w, optional=True)
            for handler in node.handlers:
                cost = add(cost, self._stmts(handler.body, wopt))
            cost = add(cost, self._stmts(node.orelse, w))
            return add(cost, self._stmts(node.finalbody, w))
        if isinstance(node, ast.Raise):
            return self._eval(node.exc, w)[0] if node.exc is not None else ZERO
        if isinstance(node, ast.Assert):
            return self._eval(node.test, w)[0]
        if isinstance(node, ast.Delete):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    w.frame.bind(t.id, VarInfo())
            return ZERO
        # ClassDef, Import, Pass, Break, Continue, Global, Nonlocal, ...
        return ZERO

    def _if(self, node: ast.If, w: _Walk) -> Expr:
        test_cost = self._eval(node.test, w)[0]
        folded = self._fold_test(node.test, w.frame)
        if folded is True:
            return add(test_cost, self._stmts(node.body, w))
        if folded is False:
            return add(test_cost, self._stmts(node.orelse, w))
        wopt = replace(w, optional=True)
        then_cost = self._stmts(node.body, wopt)
        else_cost = self._stmts(node.orelse, wopt)
        return add(test_cost, emax(then_cost, else_cost))

    def _for(self, node: "ast.For | ast.AsyncFor", w: _Walk) -> Expr:
        iter_cost, iter_info = self._eval(node.iter, w)
        spec = self._spec_of_info(iter_info)
        self._bind_target(node.target, spec.element, w.frame)
        mark = len(w.ctx.charge_lines)
        inner = replace(w, in_loop=True, per_node=w.per_node or spec.per_node)
        body = add(self._stmts(node.body, inner), self._stmts(node.orelse, inner))
        return add(iter_cost, self._multiply(body, spec, node, w, mark))

    def _multiply(
        self,
        body: Expr,
        spec: _IterSpec,
        node: ast.stmt,
        w: _Walk,
        mark: int,
    ) -> Expr:
        if _is_zero(body):
            return ZERO
        if spec.per_node and not w.per_node:
            # Looping over the node list IS the per-(step, node) view.
            return body
        count = spec.count
        if count is not None:
            return mul(count, body)
        reason = f"loop at line {node.lineno} has no derivable bound"
        anchors = w.ctx.charge_lines[mark:] or [node.lineno]
        for line in anchors:
            w.ctx.unbounded.append((line, reason))
        return Top(reason)

    def _while(self, node: ast.While, w: _Walk) -> Expr:
        test_cost = self._eval(node.test, w)[0]
        mark = len(w.ctx.charge_lines)
        inner = replace(w, in_loop=True)
        body = add(self._stmts(node.body, inner), self._stmts(node.orelse, inner))
        if _is_zero(body):
            return test_cost
        reason = f"while-loop at line {node.lineno} has no derivable bound"
        anchors = w.ctx.charge_lines[mark:] or [node.lineno]
        for line in anchors:
            w.ctx.unbounded.append((line, reason))
        return add(test_cost, Top(reason))

    def _with(self, node: "ast.With | ast.AsyncWith", w: _Walk) -> Expr:
        step_item = next(
            (it for it in node.items if _is_step_with_item(it)), None
        )
        cost = ZERO
        for item in node.items:
            if item is step_item:
                continue
            item_cost, item_info = self._eval(item.context_expr, w)
            cost = add(cost, item_cost)
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars, item_info, w.frame)
        if step_item is None:
            return add(cost, self._stmts(node.body, w))
        ctx_expr = step_item.context_expr
        assert isinstance(ctx_expr, ast.Call)
        name = (
            _literal_step_name(ctx_expr.args[0]) if ctx_expr.args else "*"
        )

        def walker(ws: _Walk) -> Expr:
            # step bodies bind into the enclosing frame on purpose:
            # later steps read names the earlier steps defined.
            return self._stmts(node.body, ws)

        self._register_step(name, node, w, walker, list(node.body))
        return cost

    # -- step registration ----------------------------------------------------

    def _register_step(
        self,
        name: str,
        anchor: ast.AST,
        w: _Walk,
        walker: Callable[[_Walk], Expr],
        body_nodes: Sequence[ast.AST],
    ) -> None:
        ctx = _Ctx(name=name, lineno=getattr(anchor, "lineno", 0))
        contract = step_contract_for(self.algorithm, name)
        if contract is not None:
            expr = contract.expr
            ctx.sweeps = contract.sweeps
            ctx.contracted = True
            ctx.note = contract.doc
            for top in find_tops(expr):
                ctx.escapes.append((ctx.lineno, top.reason or name))
        else:
            wstep = replace(w, ctx=ctx, per_node=False, in_loop=False)
            expr = simplify(walker(wstep))
        reaches = self._nodes_reach_charge(body_nodes, w.frame)
        step = self._finish(
            ctx, expr, anchor, may_repeat=w.in_loop, optional=w.optional,
            reaches=reaches,
        )
        prev = self.steps.get(name)
        if prev is None:
            self.steps[name] = step
        else:
            self.steps[name] = replace(
                prev,
                expr=emax(prev.expr, step.expr),
                sweeps=max(prev.sweeps, step.sweeps),
                charge_lines=prev.charge_lines + step.charge_lines,
                unbounded=prev.unbounded + step.unbounded,
                escapes=prev.escapes + step.escapes,
                contracts_used=prev.contracts_used + step.contracts_used,
                may_repeat=True,
                optional=prev.optional and step.optional,
                reaches_charge=prev.reaches_charge or step.reaches_charge,
            )

    def _finish(
        self,
        ctx: _Ctx,
        expr: Expr,
        anchor: ast.AST,
        *,
        may_repeat: bool,
        optional: bool,
        reaches: bool,
    ) -> StepCost:
        return StepCost(
            name=ctx.name,
            expr=expr,
            sweeps=ctx.sweeps,
            lineno=ctx.lineno,
            module=self.entry.module,
            node=anchor,
            contracted=ctx.contracted,
            contracts_used=tuple(ctx.contracts_used),
            charge_lines=tuple(ctx.charge_lines),
            unbounded=tuple(ctx.unbounded),
            escapes=tuple(ctx.escapes),
            may_repeat=may_repeat,
            optional=optional,
            reaches_charge=reaches,
            note=ctx.note,
        )

    # -- expressions ----------------------------------------------------------

    def _eval(self, node: ast.expr, w: _Walk) -> tuple[Expr, VarInfo]:
        if isinstance(node, ast.Call):
            return self._call(node, w)
        if isinstance(node, ast.Name):
            info = w.frame.lookup(node.id)
            return ZERO, info if info is not None else VarInfo()
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return ZERO, VarInfo()
            return ZERO, VarInfo(value=Const(float(node.value)))
        if isinstance(node, ast.Attribute):
            cost, base = self._eval(node.value, w)
            return cost, self._attr_info(node, base, w.frame)
        if isinstance(node, ast.Subscript):
            cost, base = self._eval(node.value, w)
            cost = add(cost, self._eval_slice(node.slice, w))
            value = self._value_of(node, w.frame)
            if value is not None:
                return cost, VarInfo(value=value)
            return cost, VarInfo(size=base.size, count=base.count)
        if isinstance(node, (ast.BinOp, ast.UnaryOp)):
            operands = (
                [node.left, node.right]
                if isinstance(node, ast.BinOp)
                else [node.operand]
            )
            cost = add(*[self._eval(op, w)[0] for op in operands])
            value = self._value_of(node, w.frame)
            return cost, VarInfo(value=value)
        if isinstance(node, ast.BoolOp):
            return add(*[self._eval(v, w)[0] for v in node.values]), VarInfo()
        if isinstance(node, ast.Compare):
            cost = add(
                self._eval(node.left, w)[0],
                *[self._eval(c, w)[0] for c in node.comparators],
            )
            return cost, VarInfo()
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            costs, parts = [], []
            for elt in node.elts:
                c, i = self._eval(elt, w)
                costs.append(c)
                parts.append(i)
            info = VarInfo(parts=parts, count=Const(float(len(parts))))
            if isinstance(node, ast.List) and not parts:
                info.kind = "list"
                info.count = Const(0.0)
            return add(*costs) if costs else ZERO, info
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comp(node, node.elt, w)
        if isinstance(node, ast.DictComp):
            return self._comp(node, node.value, w)
        if isinstance(node, ast.Dict):
            costs = [
                self._eval(v, w)[0]
                for v in [*node.keys, *node.values]
                if v is not None
            ]
            return add(*costs) if costs else ZERO, VarInfo()
        if isinstance(node, ast.IfExp):
            folded = self._fold_test(node.test, w.frame)
            test_cost = self._eval(node.test, w)[0]
            if folded is True:
                cost, info = self._eval(node.body, w)
                return add(test_cost, cost), info
            if folded is False:
                cost, info = self._eval(node.orelse, w)
                return add(test_cost, cost), info
            bc, bi = self._eval(node.body, w)
            oc, oi = self._eval(node.orelse, w)
            value = (
                emax(bi.value, oi.value)
                if bi.value is not None and oi.value is not None
                else None
            )
            return add(test_cost, bc, oc), VarInfo(value=value)
        if isinstance(node, ast.Lambda):
            return ZERO, VarInfo(kind="lambda")
        if isinstance(node, ast.Starred):
            return self._eval(node.value, w)
        if isinstance(node, ast.JoinedStr):
            costs = [
                self._eval(v.value, w)[0]
                for v in node.values
                if isinstance(v, ast.FormattedValue)
            ]
            return add(*costs) if costs else ZERO, VarInfo()
        # Slices, await, etc. — evaluate child expressions for cost only.
        costs = [
            self._eval(child, w)[0]
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        ]
        return add(*costs) if costs else ZERO, VarInfo()

    def _eval_slice(self, node: ast.expr, w: _Walk) -> Expr:
        if isinstance(node, ast.Slice):
            parts = [
                self._eval(part, w)[0]
                for part in (node.lower, node.upper, node.step)
                if part is not None
            ]
            return add(*parts) if parts else ZERO
        return self._eval(node, w)[0]

    def _comp(
        self,
        node: "ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp",
        elt: ast.expr,
        w: _Walk,
    ) -> tuple[Expr, VarInfo]:
        gen = node.generators[0]
        iter_cost, iter_info = self._eval(gen.iter, w)
        spec = self._spec_of_info(iter_info)
        self._bind_target(gen.target, spec.element, w.frame)
        mark = len(w.ctx.charge_lines)
        inner = replace(w, in_loop=True, per_node=w.per_node or spec.per_node)
        body_costs = [self._eval(cond, inner)[0] for cond in gen.ifs]
        elt_cost, elt_info = self._eval(elt, inner)
        body_costs.append(elt_cost)
        for extra in node.generators[1:]:
            body_costs.append(self._eval(extra.iter, inner)[0])
        body = add(*body_costs)
        total = self._multiply(body, spec, node, w, mark)  # type: ignore[arg-type]
        info = VarInfo(
            size=elt_info.size if elt_info.size is not None else spec.element.size,
            count=spec.count,
        )
        return add(iter_cost, total), info

    # -- calls ----------------------------------------------------------------

    def _call(self, node: ast.Call, w: _Walk) -> tuple[Expr, VarInfo]:
        if _is_runner_run(node):
            return self._runner_run(node, w)
        chain = name_chain(node.func)

        arg_costs: list[Expr] = []
        arg_infos: list[VarInfo] = []
        for arg in node.args:
            c, i = self._eval(arg, w)
            arg_costs.append(c)
            arg_infos.append(i)
        kw_infos: dict[str, VarInfo] = {}
        for kw in node.keywords:
            c, i = self._eval(kw.value, w)
            arg_costs.append(c)
            if kw.arg is not None:
                kw_infos[kw.arg] = i
        args_cost = add(*arg_costs) if arg_costs else ZERO

        # 1. Direct charge sites.
        if len(chain) >= 2 and chain[-1] in CHARGED_METHODS:
            charge, info = self._charge(node, chain[-1], arg_infos, w)
            return add(args_cost, charge), info

        # 2. Contracted engine primitives.
        callee = self._callee_by_node.get(id(node))
        callee_name = (
            callee.qualname.split(".")[-1]
            if callee is not None
            else (chain[-1] if chain else "")
        )
        contract = contract_for(callee_name)
        if contract is not None:
            size: Expr
            count: Optional[Expr] = None
            if contract.arg_index < len(arg_infos):
                arg = arg_infos[contract.arg_index]
                size = (
                    arg.size
                    if arg.size is not None
                    else (
                        arg.value
                        if arg.value is not None
                        else Top(f"unknown payload for {callee_name}")
                    )
                )
                count = arg.count
            else:
                size = Top(f"unknown payload for {callee_name}")
            cost = simplify(contract.expr(size, count))
            w.ctx.sweeps += contract.sweeps
            w.ctx.contracts_used.append(callee_name)
            w.ctx.charge_lines.append(node.lineno)
            for top in find_tops(cost):
                w.ctx.escapes.append(
                    (node.lineno, top.reason or callee_name)
                )
            out = VarInfo(
                size=contract.size_out(size) if contract.size_out else None,
                count=contract.count_out,
            )
            return add(args_cost, cost), out

        # 3. Inline resolvable project functions.
        if callee is not None:
            return self._inline(
                node, callee, arg_infos, kw_infos, args_cost, w
            )

        # 4. Structural builtins / known-shape helpers.
        return args_cost, self._opaque_info(node, chain, arg_infos, kw_infos, w)

    def _charge(
        self,
        node: ast.Call,
        method: str,
        arg_infos: list[VarInfo],
        w: _Walk,
    ) -> tuple[Expr, VarInfo]:
        w.ctx.charge_lines.append(node.lineno)
        if method in ("read_block", "append_block"):
            return Sym("B"), VarInfo(size=Sym("B"))
        if method == "read_all":
            assert isinstance(node.func, ast.Attribute)
            recv = self._pure_info(node.func.value, w.frame)
            if recv is not None and recv.size is not None:
                return recv.size, VarInfo(size=recv.size)
            reason = "read_all of a file with underivable size"
            w.ctx.escapes.append((node.lineno, reason))
            return Top(reason), VarInfo()
        if method == "take_upto":
            reason = "cursor read outside a contracted step"
            w.ctx.escapes.append((node.lineno, reason))
            return Top(reason), VarInfo()
        # method == "write"
        if arg_infos:
            arg = arg_infos[0]
            amount = arg.size if arg.size is not None else arg.value
            if amount is not None:
                return amount, VarInfo()
        reason = "write of a chunk with underivable size"
        w.ctx.escapes.append((node.lineno, reason))
        return Top(reason), VarInfo()

    def _inline(
        self,
        node: ast.Call,
        callee: FunctionInfo,
        arg_infos: list[VarInfo],
        kw_infos: dict[str, VarInfo],
        args_cost: Expr,
        w: _Walk,
    ) -> tuple[Expr, VarInfo]:
        if callee.key in w.visited or w.depth >= MAX_DEPTH:
            if self._fn_reaches_charge(callee):
                reason = (
                    f"recursion/depth guard hit at {callee.qualname} "
                    "(which can charge I/O)"
                )
                w.ctx.escapes.append((node.lineno, reason))
                return add(args_cost, Top(reason)), VarInfo()
            return args_cost, VarInfo()
        closure: Optional[Frame] = None
        if isinstance(node.func, ast.Name):
            bound = w.frame.lookup(node.func.id)
            if bound is not None and bound.fn is not None:
                closure = bound.closure
                callee = bound.fn
        child = Frame(parent=closure)
        params = callee.node.args
        names = [a.arg for a in [*params.posonlyargs, *params.args]]
        if callee.is_method and names and names[0] == "self":
            names = names[1:]
        for name, info in zip(names, arg_infos):
            child.bind(name, info)
        for name, info in kw_infos.items():
            child.bind(name, info)
        defaults = params.defaults
        for name, default in zip(names[len(names) - len(defaults):], defaults):
            if child.lookup(name) is None:
                value = self._value_of(default, child)
                child.bind(name, VarInfo(value=value))
        for kwarg, default2 in zip(params.kwonlyargs, params.kw_defaults):
            if child.lookup(kwarg.arg) is None and default2 is not None:
                value = self._value_of(default2, child)
                child.bind(kwarg.arg, VarInfo(value=value))
        wchild = replace(
            w,
            frame=child,
            depth=w.depth + 1,
            visited=w.visited | {callee.key},
            ret=([VarInfo()],),
        )
        body_cost = self._stmts(callee.node.body, wchild)
        return add(args_cost, body_cost), wchild.ret[0][0]

    def _opaque_info(
        self,
        node: ast.Call,
        chain: list[str],
        arg_infos: list[VarInfo],
        kw_infos: dict[str, VarInfo],
        w: _Walk,
    ) -> VarInfo:
        tail = chain[-1] if chain else ""
        if tail == "zip":
            return VarInfo(kind="zip", parts=arg_infos)
        if tail == "enumerate" and arg_infos:
            return VarInfo(kind="enumerate", parts=[VarInfo(), arg_infos[0]])
        if tail == "range":
            count: Optional[Expr] = None
            values = [self._value_of(a, w.frame) for a in node.args]
            if len(node.args) == 1 and values[0] is not None:
                count = values[0]
            elif (
                len(node.args) == 2
                and values[0] is not None
                and values[1] is not None
            ):
                count = add(values[1], mul(Const(-1.0), values[0]))
            return VarInfo(kind="range", count=count)
        if tail in ("list", "tuple", "sorted", "reversed", "set", "int", "float"):
            return arg_infos[0] if arg_infos else VarInfo()
        if tail == "dict" and arg_infos:
            first = arg_infos[0]
            if first.kind == "zip" and first.parts:
                return first.parts[-1]
            return first
        if tail in ("len",):
            if arg_infos and arg_infos[0].count is not None:
                return VarInfo(value=arg_infos[0].count)
            return VarInfo()
        if tail in ("max", "min"):
            values = [self._value_of(a, w.frame) for a in node.args]
            if values and all(v is not None for v in values) and not node.keywords:
                op = emax if tail == "max" else emin
                return VarInfo(value=op(*[v for v in values if v is not None]))
            return VarInfo()
        if tail == "choice":
            # rng.choice(pool, size=k): k draws.
            if "size" in kw_infos and kw_infos["size"].value is not None:
                return VarInfo(count=kw_infos["size"].value)
            if len(arg_infos) >= 2 and arg_infos[1].value is not None:
                return VarInfo(count=arg_infos[1].value)
            return VarInfo()
        if tail == "pop" and isinstance(node.func, ast.Attribute):
            base = self._pure_info(node.func.value, w.frame)
            if base is not None:
                return VarInfo(size=base.size)
            return VarInfo()
        if tail in ("append", "extend") and isinstance(node.func, ast.Attribute):
            base = self._pure_info(node.func.value, w.frame)
            if base is not None and arg_infos:
                arg = arg_infos[0]
                if arg.size is not None:
                    base.size = arg.size
                elif tail == "append" and arg.value is not None and base.size is None:
                    base.size = arg.value
                base.count = None  # growth beyond the derivable shape
            return VarInfo()
        if tail == "view":
            base = self._pure_info(
                node.func.value, w.frame
            ) if isinstance(node.func, ast.Attribute) else None
            if base is not None and base.kind == "cluster":
                return VarInfo(kind="cluster")
            return VarInfo()
        if tail == "subset":
            base = self._pure_info(
                node.func.value, w.frame
            ) if isinstance(node.func, ast.Attribute) else None
            if base is not None and base.kind == "perf":
                return VarInfo(kind="perf")
            return VarInfo()
        return VarInfo()

    def _runner_run(self, node: ast.Call, w: _Walk) -> tuple[Expr, VarInfo]:
        pre = add(
            *[self._eval(a, w)[0] for a in node.args[:2]]
        ) if node.args else ZERO
        name = (
            _literal_step_name(node.args[1]) if len(node.args) >= 2 else "*"
        )
        target = node.args[2] if len(node.args) >= 3 else None
        ret_holder = [VarInfo()]
        body_nodes: list[ast.AST] = []
        walker: Callable[[_Walk], Expr]
        if isinstance(target, ast.Lambda):
            lam = target

            def walker(ws: _Walk) -> Expr:
                wlam = replace(
                    ws, frame=Frame(parent=w.frame), ret=(ret_holder,)
                )
                cost, info = self._eval(lam.body, wlam)
                ret_holder[0] = info
                return cost

            body_nodes = [lam.body]
        elif isinstance(target, ast.Name):
            bound = w.frame.lookup(target.id)
            fn = bound.fn if bound is not None else None
            if fn is None:
                fn = self.project.resolve_name(
                    self.entry.module, [self.entry], target.id
                )
            if fn is not None:
                closure = bound.closure if bound is not None else None
                registered = fn

                def walker(ws: _Walk) -> Expr:
                    child = Frame(parent=closure)
                    wch = replace(
                        ws,
                        frame=child,
                        depth=ws.depth + 1,
                        visited=ws.visited | {registered.key},
                        ret=([VarInfo()],),
                    )
                    cost = self._stmts(registered.node.body, wch)
                    ret_holder[0] = wch.ret[0][0]
                    return cost

                body_nodes = list(fn.node.body)
            else:

                def walker(ws: _Walk) -> Expr:
                    return ZERO

        else:

            def walker(ws: _Walk) -> Expr:
                return ZERO

        self._register_step(name, node, w, walker, body_nodes)
        return pre, ret_holder[0]

    # -- iterable shape -------------------------------------------------------

    def _spec_of_info(self, info: VarInfo) -> _IterSpec:
        if info.kind == "nodes":
            return _IterSpec(
                element=VarInfo(kind="node"), per_node=True, count=Sym("p")
            )
        if info.kind == "zip" and info.parts is not None:
            subs = [self._spec_of_info(part) for part in info.parts]
            per_node = any(s.per_node for s in subs)
            if per_node:
                count: Optional[Expr] = Sym("p")
            else:
                counts = [s.count for s in subs if s.count is not None]
                count = emin(*counts) if counts else None
            element = VarInfo(parts=[s.element for s in subs])
            return _IterSpec(element=element, per_node=per_node, count=count)
        if info.kind == "enumerate" and info.parts is not None:
            inner = self._spec_of_info(info.parts[1])
            element = VarInfo(parts=[VarInfo(), inner.element])
            return _IterSpec(
                element=element, per_node=inner.per_node, count=inner.count
            )
        if info.kind == "range":
            return _IterSpec(element=VarInfo(), count=info.count)
        if info.kind == "cluster":
            # iterating the cluster/view object itself is not a shape we
            # model — leave it unbounded.
            return _IterSpec(element=VarInfo())
        return _IterSpec(
            element=VarInfo(size=info.size), per_node=False, count=info.count
        )

    def _bind_target(
        self, target: ast.expr, info: VarInfo, frame: Frame
    ) -> None:
        if isinstance(target, ast.Name):
            frame.bind(target.id, info)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            parts = info.parts
            if parts is not None and len(parts) == len(target.elts):
                for elt, part in zip(target.elts, parts):
                    self._bind_target(elt, part, frame)
            else:
                for elt in target.elts:
                    self._bind_target(
                        elt, VarInfo(size=info.size, count=info.count), frame
                    )
            return
        if isinstance(target, ast.Starred):
            self._bind_target(target.value, VarInfo(), frame)
        # subscript/attribute targets: no binding

    # -- scalar values --------------------------------------------------------

    def _pure_info(self, node: ast.expr, frame: Frame) -> Optional[VarInfo]:
        if isinstance(node, ast.Name):
            return frame.lookup(node.id)
        if isinstance(node, ast.Attribute):
            base = self._pure_info(node.value, frame)
            if base is None:
                return None
            return self._attr_info(node, base, frame)
        if isinstance(node, ast.Subscript):
            base = self._pure_info(node.value, frame)
            if base is None:
                return None
            return VarInfo(size=base.size, count=base.count)
        return None

    def _attr_info(
        self, node: ast.Attribute, base: VarInfo, frame: Frame
    ) -> VarInfo:
        value = self._value_of(node, frame)
        if value is not None:
            return VarInfo(value=value)
        if node.attr == "nodes" and base.kind == "cluster":
            return VarInfo(kind="nodes", count=Sym("p"))
        return VarInfo(size=base.size)

    def _value_of(self, node: ast.expr, frame: Frame) -> Optional[Expr]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return None
            return Const(float(node.value))
        if isinstance(node, ast.Name):
            info = frame.lookup(node.id)
            return info.value if info is not None else None
        if isinstance(node, ast.Attribute):
            base = self._pure_info(node.value, frame)
            attr = node.attr
            if attr == "p" and base is not None and base.kind == "cluster":
                return Sym("p")
            if attr == "total" and base is not None and base.kind == "perf":
                return Sym("G")
            if base is not None and base.kind == "config":
                table = {
                    "oversample": Sym("c"),
                    "block_items": Sym("B"),
                    "message_items": Sym("cm"),
                }
                if attr in table:
                    return table[attr]
                return None
            if attr == "B":
                return Sym("B")
            if attr == "n_items" and base is not None and base.size is not None:
                return base.size
            if attr == "n_blocks" and base is not None and base.size is not None:
                return ceil(Div(base.size, Sym("B")))
            return None
        if isinstance(node, ast.Subscript):
            base = self._pure_info(node.value, frame)
            if base is not None and base.kind == "perf":
                return Sym("g")
            if base is not None and base.kind == "portions":
                return Sym("l")
            return None
        if isinstance(node, ast.BinOp):
            left = self._value_of(node.left, frame)
            right = self._value_of(node.right, frame)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Add):
                return add(left, right)
            if isinstance(node.op, ast.Sub):
                return add(left, mul(Const(-1.0), right))
            if isinstance(node.op, ast.Mult):
                return mul(left, right)
            if isinstance(node.op, (ast.Div, ast.FloorDiv)):
                # floor(a/b) <= a/b: Div is the sound upper bound for the
                # loop counts these values feed.
                return simplify(Div(left, right))
            return None
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                operand = node.operand
                if (
                    isinstance(operand, ast.BinOp)
                    and isinstance(operand.op, ast.FloorDiv)
                    and isinstance(operand.left, ast.UnaryOp)
                    and isinstance(operand.left.op, ast.USub)
                ):
                    # -(-a // b) is the ceil-division idiom.
                    num = self._value_of(operand.left.operand, frame)
                    den = self._value_of(operand.right, frame)
                    if num is not None and den is not None:
                        return ceil(Div(num, den))
                inner = self._value_of(operand, frame)
                return mul(Const(-1.0), inner) if inner is not None else None
            if isinstance(node.op, ast.UAdd):
                return self._value_of(node.operand, frame)
            return None
        if isinstance(node, ast.Call):
            chain = name_chain(node.func)
            tail = chain[-1] if chain else ""
            if tail in ("max", "min") and node.args and not node.keywords:
                values = [self._value_of(a, frame) for a in node.args]
                if all(v is not None for v in values):
                    op = emax if tail == "max" else emin
                    return op(*[v for v in values if v is not None])
                return None
            if tail == "len" and len(node.args) == 1:
                info = self._pure_info(node.args[0], frame)
                if info is not None:
                    return info.count
                return None
            if tail in ("int", "float", "abs") and len(node.args) == 1:
                return self._value_of(node.args[0], frame)
            return None
        if isinstance(node, ast.IfExp):
            body = self._value_of(node.body, frame)
            orelse = self._value_of(node.orelse, frame)
            if body is not None and orelse is not None:
                return emax(body, orelse)
            return None
        return None

    # -- branch folding -------------------------------------------------------

    def _fold_test(self, test: ast.expr, frame: Frame) -> Optional[bool]:
        if isinstance(test, ast.Constant):
            return bool(test.value)
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            inner = self._fold_test(test.operand, frame)
            return None if inner is None else not inner
        if isinstance(test, ast.BoolOp):
            folded = [self._fold_test(v, frame) for v in test.values]
            if isinstance(test.op, ast.And):
                if any(f is False for f in folded):
                    return False
                if all(f is True for f in folded):
                    return True
                return None
            if any(f is True for f in folded):
                return True
            if all(f is False for f in folded):
                return False
            return None
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Eq, ast.NotEq))
            and isinstance(test.comparators[0], ast.Constant)
        ):
            default = self._config_default(test.left, frame)
            if default is not None:
                result = default == test.comparators[0].value
                if isinstance(test.ops[0], ast.NotEq):
                    result = not result
                return result
            return None
        default = self._config_default(test, frame)
        if isinstance(default, bool):
            return default
        return None

    def _config_default(
        self, node: ast.expr, frame: Frame
    ) -> Optional[object]:
        if not isinstance(node, ast.Attribute):
            return None
        base = self._pure_info(node.value, frame)
        if base is None or base.kind != "config":
            return None
        return _CONFIG_DEFAULTS.get(node.attr)

    # -- charge reachability (REP306 / guard widening) ------------------------

    def _nodes_reach_charge(
        self, nodes: Sequence[ast.AST], frame: Frame
    ) -> bool:
        for root in nodes:
            for sub in ast.walk(root):
                if not isinstance(sub, ast.Call):
                    continue
                chain = name_chain(sub.func)
                if chain:
                    if len(chain) >= 2 and chain[-1] in CHARGED_METHODS:
                        return True
                    if chain[-1] in CHARGED_CONSTRUCTORS:
                        return True
                callee = self._callee_by_node.get(id(sub))
                if callee is not None and self._fn_reaches_charge(callee):
                    return True
                if _is_runner_run(sub):
                    for arg in sub.args[2:]:
                        if isinstance(arg, ast.Name):
                            bound = frame.lookup(arg.id)
                            fn = bound.fn if bound is not None else None
                            if fn is not None and self._fn_reaches_charge(fn):
                                return True
        return False

    def _fn_reaches_charge(self, fn: FunctionInfo) -> bool:
        return fn_reaches_charge(self.project, fn)


def callee_map(project: Project) -> dict[int, FunctionInfo]:
    """``id(call node) -> resolved callee`` for the whole project,
    memoized on ``project.cache``."""
    cached = project.cache.get("cost:callee_by_node")
    if isinstance(cached, dict):
        return cached
    table: dict[int, FunctionInfo] = {}
    for fn in project.functions.values():
        for site in fn.callers:
            table[id(site.node)] = fn
    project.cache["cost:callee_by_node"] = table
    return table


def fn_reaches_charge(project: Project, fn: FunctionInfo) -> bool:
    """True when ``fn`` can transitively reach a sanctioned charge site.

    Scans the function subtree (nested defs included) for calls whose
    name chain ends in a charged method, for charged-writer
    constructions, and follows resolved callees; memoized on
    ``project.cache`` with a cycle cut.
    """
    memo = project.cache.setdefault("cost:reaches_charge", {})
    assert isinstance(memo, dict)
    cached = memo.get(fn.key)
    if cached is not None:
        return bool(cached)
    memo[fn.key] = False  # cut cycles
    callees = callee_map(project)
    result = False
    for sub in ast.walk(fn.node):
        if not isinstance(sub, ast.Call):
            continue
        chain = name_chain(sub.func)
        if chain:
            if len(chain) >= 2 and chain[-1] in CHARGED_METHODS:
                result = True
                break
            if chain[-1] in CHARGED_CONSTRUCTORS:
                result = True
                break
        callee = callees.get(id(sub))
        if callee is not None and callee.key != fn.key:
            if fn_reaches_charge(project, callee):
                result = True
                break
    memo[fn.key] = result
    return result


def derive_costs(
    project: Project, entries: Optional[dict[str, str]] = None
) -> dict[str, AlgorithmCosts]:
    """Derive step bounds for every registered entry algorithm.

    With the default ``entries`` (:data:`KNOWN_ENTRIES`) the result is
    memoized on ``project.cache`` so the REP301–REP306 rules share one
    derivation.  Entries missing from the project are skipped — the
    rules treat an absent algorithm as out of scope, not as a finding.
    """
    if entries is None:
        cached = project.cache.get("cost:derived")
        if isinstance(cached, dict):
            return cached
    table = dict(KNOWN_ENTRIES) if entries is None else dict(entries)
    derived: dict[str, AlgorithmCosts] = {}
    for algorithm, key in table.items():
        if key not in project.functions:
            continue
        derived[algorithm] = CostInterpreter(project, algorithm, key).derive()
    if entries is None:
        project.cache["cost:derived"] = derived
    return derived
