"""Dynamic certification: static bounds vs measured I/O of real runs.

The certifier's closing move — ``repro audit --certify`` — substitutes
one recorded run's concrete parameters (n, p, B, M, c, d, perf) into
the *statically derived* per-step expressions and fails if measured
item I/O ever exceeds the static bound.  With the REP301 dominance
check (derived <= paper) and the dynamic auditor (measured <= paper,
per run), this makes the certifier, the auditor and the fuzzer three
mutually cross-checking views of one cost model:

    measured  <=  derived(static)  <=  paper

Three input shapes are supported:

* :func:`certify_events` — a telemetry event stream + its
  :class:`~repro.obs.audit.RunMeta`, exactly like ``repro audit``;
* :func:`certify_corpus` — replays every scenario in a fuzz-corpus
  directory (``tests/data/fuzz_corpus/`` in CI) and certifies the
  fault-free ones (degraded/recovered runs rescale shares mid-run, so
  the per-node static bounds do not describe them — same exemption the
  auditor applies);
* :func:`certify_bench` — folds the recorded ``audit`` blocks of a
  ``BENCH_sort.json`` size x p matrix, no re-execution needed.

The per-node environment uses ``l = max(portion_i, ceil(opt_i))`` —
both the actual split and the paper's idealised share, so the static
expressions (derived in terms of the paper's ``l``) stay sound for the
rounding the concrete splitter performs.  Unknown memory widens to
"effectively infinite" (merge passes floor at the engine's minimum),
matching the dynamic auditor's ``memory_items=None`` fallback.
"""

from __future__ import annotations

import glob
import json
import math
import os
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.core.perf import PerfVector
from repro.metrics.report import Table
from repro.obs.audit import RunMeta, collect_step_io
from repro.obs.events import Event

from repro.analysis.cost.interp import derive_costs
from repro.analysis.cost.paper import NUMBERED_STEPS
from repro.analysis.cost.sym import Expr, find_tops

#: One (step, node, measured item I/O) cell of a recorded run.
Cell = tuple[str, int, int]

#: Memory substituted when a run recorded ``memory_items=None``: large
#: enough that the pass count floors at the engine minimum — the same
#: "no multi-pass penalty derivable" fallback the dynamic auditor uses.
_UNKNOWN_MEMORY = float(2**62)

_EXPR_CACHE: dict[str, dict[str, Expr]] = {}


def static_step_exprs(algorithm: str = "external_psrs") -> dict[str, Expr]:
    """Derive (and memoize) the installed package's step expressions."""
    if not _EXPR_CACHE:
        import repro
        from repro.analysis.flow import load_project

        root = Path(repro.__file__).parent
        project = load_project([root])
        for algo, costs in derive_costs(project).items():
            _EXPR_CACHE[algo] = {
                name: sc.expr for name, sc in costs.steps.items()
            }
    return _EXPR_CACHE.get(algorithm, {})


def node_env(meta: RunMeta, node: int) -> dict[str, float]:
    """The concrete symbol environment of one node of one run."""
    perf = PerfVector(list(meta.perf))
    portions = perf.portions(meta.n_items)
    l_i = float(max(
        portions[node], math.ceil(perf.optimal_share(meta.n_items, node))
    ))
    memory = (
        float(meta.memory_items)
        if meta.memory_items is not None
        else _UNKNOWN_MEMORY
    )
    B = float(meta.block_items)
    return {
        "n": float(meta.n_items),
        "p": float(perf.p),
        "B": B,
        "M": memory,
        "c": float(meta.oversample),
        "g": float(perf[node]),
        "G": float(perf.total),
        "d": float(meta.d_duplicates),
        "l": l_i,
        "r": float(meta.n_items),
        "cm": 8.0 * B,
    }


@dataclass(frozen=True)
class CertifyRow:
    """One (step, node) verdict: measured vs the static bound."""

    step: str
    node: int
    measured_items: int
    bound_items: Optional[float]  # None = informational, no static bound
    note: str = ""

    @property
    def ok(self) -> bool:
        return self.bound_items is None or self.measured_items <= self.bound_items

    @property
    def ratio(self) -> Optional[float]:
        if self.bound_items is None or self.bound_items == 0:
            return None
        return self.measured_items / self.bound_items


@dataclass
class CertifyReport:
    """All verdicts of one certified run."""

    meta: RunMeta
    algorithm: str
    rows: list[CertifyRow] = field(default_factory=list)
    #: Numbered steps that appeared in the run but have no usable static
    #: bound (missing or TOP) — a certification failure on its own.
    missing_steps: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.missing_steps and all(r.ok for r in self.rows)

    @property
    def violations(self) -> list[CertifyRow]:
        return [r for r in self.rows if not r.ok]

    def table(self) -> Table:
        t = Table(
            "static certification (measured vs derived per-step item I/O)",
            ["step", "node", "measured", "static bound", "ratio", "verdict"],
        )
        for r in self.rows:
            if r.bound_items is None:
                t.add_row(r.step, r.node, r.measured_items, "-", "-",
                          f"info ({r.note})" if r.note else "info")
            else:
                ratio = f"{r.ratio:.3f}" if r.ratio is not None else "-"
                t.add_row(
                    r.step, r.node, r.measured_items,
                    round(r.bound_items, 1), ratio,
                    "ok" if r.ok else "VIOLATION",
                )
        for step in self.missing_steps:
            t.add_row(step, "-", "-", "-", "-", "NO STATIC BOUND")
        verdict = "CERTIFIED" if self.ok else (
            f"FAIL ({len(self.violations)} violation(s), "
            f"{len(self.missing_steps)} unbounded step(s))"
        )
        t.add_section(verdict)
        return t

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "algorithm": self.algorithm,
            "meta": self.meta.to_dict(),
            "missing_steps": list(self.missing_steps),
            "rows": [
                {
                    "step": r.step,
                    "node": r.node,
                    "measured_items": r.measured_items,
                    "bound_items": r.bound_items,
                    "ratio": r.ratio,
                    "ok": r.ok,
                    "note": r.note,
                }
                for r in self.rows
            ],
        }


def _expr_for(exprs: Mapping[str, Expr], step: str) -> Optional[Expr]:
    hit = exprs.get(step)
    if hit is not None:
        return hit
    for pattern, expr in exprs.items():
        if "*" in pattern and fnmatchcase(step, pattern):
            return expr
    return None


def certify_cells(
    cells: Iterable[Cell],
    meta: RunMeta,
    *,
    algorithm: str = "external_psrs",
    exprs: Optional[Mapping[str, Expr]] = None,
) -> CertifyReport:
    """Certify folded (step, node, measured) cells of one run."""
    table = static_step_exprs(algorithm) if exprs is None else exprs
    report = CertifyReport(meta=meta, algorithm=algorithm)
    p = len(meta.perf)
    for step, node, measured in sorted(cells):
        if node < 0 or node >= p:
            report.rows.append(CertifyRow(
                step, node, measured, None, "no owning node"
            ))
            continue
        if (
            algorithm == "external_psrs"
            and step == "2:pivots"
            and meta.pivot_method == "quantile"
        ):
            report.rows.append(CertifyRow(
                step, node, measured, None,
                "quantile search I/O not statically bounded",
            ))
            continue
        expr = _expr_for(table, step)
        numbered = step in NUMBERED_STEPS if algorithm == "external_psrs" \
            else step in table
        if expr is None or find_tops(expr):
            if numbered and step not in report.missing_steps:
                report.missing_steps.append(step)
            else:
                report.rows.append(CertifyRow(
                    step, node, measured, None, "no static bound"
                ))
            continue
        bound = expr.eval(node_env(meta, node))
        if not math.isinf(bound):
            # block-granular I/O: a mid-block bound is not violable by
            # sub-block amounts (same rounding the auditor applies)
            bound = float(
                math.ceil(bound / meta.block_items) * meta.block_items
            )
        report.rows.append(CertifyRow(
            step, node, measured, bound, "derived static bound"
        ))
    return report


def certify_events(
    events: Iterable[Event],
    meta: RunMeta,
    *,
    algorithm: str = "external_psrs",
    exprs: Optional[Mapping[str, Expr]] = None,
) -> CertifyReport:
    """Certify a telemetry event stream against the static bounds."""
    cells = [
        (step, node, io.item_ios)
        for (step, node), io in collect_step_io(events).items()
    ]
    return certify_cells(cells, meta, algorithm=algorithm, exprs=exprs)


@dataclass(frozen=True)
class CertifyCaseResult:
    """One corpus scenario / bench run folded through the certifier."""

    name: str
    report: Optional[CertifyReport]
    skipped: Optional[str] = None  # reason when bounds do not apply

    @property
    def ok(self) -> bool:
        return self.report is None or self.report.ok


def certify_corpus(
    corpus_dir: Union[str, Path],
    *,
    kernel: str = "event",
) -> list[CertifyCaseResult]:
    """Replay and certify every scenario in a fuzz-corpus directory.

    Only fault-free (``status == "ok"``) replays are certified: degraded
    and recovered runs rescale node shares mid-run, and violation cases
    exist precisely to exceed bounds (under tightened slack), so the
    fault-free static bounds do not describe them.
    """
    import numpy as np

    from repro.core.theory import max_duplicate_count
    from repro.fuzz import ScenarioExecutor, load_case
    from repro.workloads.generators import make_benchmark

    executor = ScenarioExecutor(collect_coverage=False, kernel=kernel)
    results: list[CertifyCaseResult] = []
    for path in sorted(glob.glob(os.path.join(str(corpus_dir), "*.jsonl"))):
        name = os.path.splitext(os.path.basename(path))[0]
        scenario = load_case(path).scenario
        outcome = executor.run(scenario)
        if outcome.status != "ok":
            results.append(CertifyCaseResult(
                name, None,
                f"status {outcome.status!r}: fault-free bounds do not apply",
            ))
            continue
        perf = PerfVector(list(scenario.perf))
        n = perf.nearest_exact(scenario.n_items)
        data = make_benchmark(
            scenario.benchmark, n, seed=scenario.seed,
            dtype=np.dtype(scenario.dtype),
        )
        meta = RunMeta(
            n_items=outcome.n_sorted,
            perf=tuple(int(v) for v in scenario.perf),
            memory_items=scenario.memory_items,
            block_items=scenario.block_items,
            oversample=scenario.oversample,
            d_duplicates=max_duplicate_count(data),
            pivot_method=scenario.pivot_method,
        )
        cells = [
            (step, node, items_read + items_written)
            for step, node, _br, _bw, items_read, items_written
            in outcome.io_counters
        ]
        results.append(CertifyCaseResult(
            name, certify_cells(cells, meta)
        ))
    return results


def certify_bench(path: Union[str, Path]) -> list[CertifyCaseResult]:
    """Certify every audited run recorded in a ``BENCH_sort.json``."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    results: list[CertifyCaseResult] = []
    for run in data.get("runs", []):
        name = str(run.get("key", "?"))
        if run.get("degraded"):
            results.append(CertifyCaseResult(
                name, None, "degraded run: per-node bounds do not apply"
            ))
            continue
        audit = run.get("audit")
        if not isinstance(audit, dict):
            results.append(CertifyCaseResult(name, None, "no audit block"))
            continue
        meta = RunMeta.from_dict(audit["meta"])
        cells = [
            (str(row["step"]), int(row["node"]), int(row["measured_items"]))
            for row in audit.get("rows", [])
        ]
        results.append(CertifyCaseResult(
            name, certify_cells(cells, meta)
        ))
    return results
