"""REP301..REP306: symbolic I/O-cost certification rules.

All six rules are queries over the derived per-(algorithm, step) cost
model (:func:`repro.analysis.cost.interp.derive_costs`): the abstract
interpreter turns each registered entry point into symbolic per-step
item-I/O bounds, and the rules compare those bounds against the paper's
formulas (:mod:`repro.analysis.cost.paper`), the three-pass discipline,
and the checked-in baseline.

Findings anchor at the entry function (or the step's registration site)
in the algorithm's own module, so ``# noqa: REP30x`` directives work
exactly like every other lint pass.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.engine import Finding
from repro.analysis.flow.project import FunctionInfo, Project
from repro.analysis.flow.typestate import DeepRule

from repro.analysis.cost.charges import CONTRACTS, STEP_CONTRACTS
from repro.analysis.cost.interp import (
    AlgorithmCosts,
    StepCost,
    derive_costs,
    fn_reaches_charge,
)
from repro.analysis.cost.paper import PAPER_STEP_BOUNDS, paper_bound_for
from repro.analysis.cost.sym import (
    Const,
    Expr,
    dominates,
    from_dict,
    sample_envs,
)

#: Default location of the checked-in per-step expression baseline.
COST_BASELINE_NAME = "cost-baseline.json"

#: Algorithm 1 allows at most this many full passes over a step's data.
MAX_SWEEPS = 3

#: Contracts that are intentionally I/O-free (or intentionally TOP) —
#: exempt from the REP306 dead-bound check on contracted functions.
_DEAD_BOUND_EXEMPT = frozenset({"partition_refs", "exact_quantile_pivots"})


def _fmt_env(env: dict[str, float]) -> str:
    keys = ("n", "p", "B", "M", "g", "G", "c", "d", "l", "r", "cm")
    return ", ".join(f"{k}={env[k]:g}" for k in keys if k in env)


class CostRule(DeepRule):
    """Base: derive (cached) costs once, iterate per algorithm."""

    scope = ("core/",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        for costs in derive_costs(project).values():
            if not self.applies_to(costs.entry.module.relpath):
                continue
            yield from self.check_costs(project, costs)

    def check_costs(
        self, project: Project, costs: AlgorithmCosts
    ) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover

    def _finding(
        self, costs: AlgorithmCosts, step: Optional[StepCost], message: str
    ) -> Finding:
        node = step.node if step is not None else costs.entry.node
        return costs.entry.module.finding(
            self,  # type: ignore[arg-type]  # duck-typed Rule metadata
            node,
            f"{message} [{costs.algorithm}]",
        )


class DerivedExceedsPaperRule(CostRule):
    code = "REP301"
    name = "derived-bound-exceeds-paper-bound"
    summary = "a step's derived I/O bound exceeds the paper's formula"
    rationale = (
        "The certifier's contract is derived <= paper: the bound the "
        "abstract interpreter extracts from the code must be dominated "
        "by the formula the paper states for that step (checked "
        "numerically over the model-parameter sample grid).  A "
        "violation means the implementation performs more I/O than "
        "Algorithm 1's analysis allows — a cost bug the dynamic auditor "
        "only catches on inputs that happen to trigger it."
    )
    fix_hint = (
        "Remove the extra I/O (or tighten the loop that multiplies it); "
        "if the paper formula itself is being refined, update "
        "analysis/cost/paper.py in the same change and say why."
    )

    def check_costs(
        self, project: Project, costs: AlgorithmCosts
    ) -> Iterator[Finding]:
        envs = sample_envs()
        for name, step in costs.steps.items():
            paper = paper_bound_for(costs.algorithm, name)
            if paper is None or not step.bounded:
                continue
            witness = dominates(step.expr, paper, envs)
            if witness is not None:
                yield self._finding(
                    costs,
                    step,
                    f"step {name!r}: derived bound {step.expr.render()} "
                    f"exceeds the paper bound {paper.render()} at "
                    f"({_fmt_env(witness)})",
                )


class UnboundedIORule(CostRule):
    code = "REP302"
    name = "unbounded-io-in-step"
    summary = "a TOP (unbounded) term escaped to a step's I/O bound"
    rationale = (
        "TOP is the interpreter's honest 'I cannot bound this': an "
        "underivable write size, a cursor read outside a contracted "
        "step, a guarded call that can charge I/O.  A step bound "
        "containing TOP certifies nothing — the step's I/O is "
        "statically unbounded until the code is restructured or a "
        "documented contract covers it."
    )
    fix_hint = (
        "Funnel the I/O through a contracted primitive "
        "(analysis/cost/charges.py), or make the charged size derivable "
        "(pass the payload straight from a tracked collection)."
    )

    def check_costs(
        self, project: Project, costs: AlgorithmCosts
    ) -> Iterator[Finding]:
        for name, step in list(costs.steps.items()) + [
            ("<outside>", costs.outside)
        ]:
            for line, reason in step.escapes:
                where = (
                    f"step {name!r}" if name != "<outside>"
                    else "outside any step"
                )
                yield self._finding(
                    costs, step, f"{where}: unbounded I/O at line {line}: "
                    f"{reason}",
                )


class ExtraPassRule(CostRule):
    code = "REP303"
    name = "extra-pass"
    summary = "a step makes more than three passes over its data"
    rationale = (
        "The paper's constant-factor claim is that no step reads+writes "
        "its data more than three times (run formation, one merge "
        "sweep, and a materialising copy are the budget).  Sweep counts "
        "come from the contracts' documented pass counts, so an excess "
        "here means a step composes more full-data primitives than "
        "Algorithm 1 performs."
    )
    fix_hint = (
        "Fuse passes (partition during the final merge sweep, stream "
        "instead of materialising) or split the work across steps."
    )

    def check_costs(
        self, project: Project, costs: AlgorithmCosts
    ) -> Iterator[Finding]:
        for name, step in costs.steps.items():
            if step.sweeps > MAX_SWEEPS:
                yield self._finding(
                    costs,
                    step,
                    f"step {name!r} makes {step.sweeps} passes over its "
                    f"data (the paper allows {MAX_SWEEPS})",
                )


class UnboundedLoopIORule(CostRule):
    code = "REP304"
    name = "io-outside-derivable-loop-bound"
    summary = "an I/O charge sits in a loop with no derivable bound"
    rationale = (
        "Every charge site must be covered by a derivable loop bound "
        "(over nodes, blocks, runs or samples) for the product to be a "
        "closed form.  A charge under a while-loop or a data-dependent "
        "iterable the range analysis cannot bound silently widens the "
        "whole step to TOP."
    )
    fix_hint = (
        "Loop over a counted range (blocks = ceil(l/B), runs, nodes), "
        "or cover the loop with a step contract documenting why its "
        "receiver-driven bound is sound."
    )

    def check_costs(
        self, project: Project, costs: AlgorithmCosts
    ) -> Iterator[Finding]:
        for name, step in list(costs.steps.items()) + [
            ("<outside>", costs.outside)
        ]:
            for line, reason in step.unbounded:
                where = (
                    f"step {name!r}" if name != "<outside>"
                    else "outside any step"
                )
                yield self._finding(
                    costs,
                    step,
                    f"{where}: I/O charge at line {line} is not covered "
                    f"by a derivable loop bound ({reason})",
                )


class BoundRegressionRule(CostRule):
    code = "REP305"
    name = "bound-regression"
    summary = "a derived bound regressed vs the checked-in baseline"
    rationale = (
        "cost-baseline.json pins every derived per-step expression.  A "
        "new derivation that numerically exceeds the pinned one (over "
        "the sample grid) is an I/O-cost regression no test input need "
        "have triggered; an equal-or-lower bound updates the baseline "
        "silently via --write-cost-baseline."
    )
    fix_hint = (
        "If the regression is intended (new feature with documented "
        "extra I/O), regenerate the baseline with "
        "`repro lint --cost --write-cost-baseline` and commit it; "
        "otherwise find the loop or charge that grew."
    )

    def __init__(self, baseline_path: Optional[Path] = None) -> None:
        self.baseline_path = baseline_path

    def _load_baseline(
        self, project: Project
    ) -> Optional[dict[str, dict[str, Expr]]]:
        injected = project.cache.get("cost:baseline")
        raw: Optional[dict[str, object]] = None
        if isinstance(injected, dict):
            raw = injected  # type: ignore[assignment]
        else:
            path = self.baseline_path or Path(COST_BASELINE_NAME)
            if not path.is_file():
                return None
            try:
                loaded = json.loads(path.read_text())
            except (OSError, ValueError):
                return None
            if not isinstance(loaded, dict):
                return None
            raw = loaded
        algorithms = raw.get("algorithms")
        if not isinstance(algorithms, dict):
            return None
        out: dict[str, dict[str, Expr]] = {}
        for algo, steps in algorithms.items():
            if not isinstance(steps, dict):
                continue
            table: dict[str, Expr] = {}
            for step, payload in steps.items():
                expr_dict = (
                    payload.get("expr")
                    if isinstance(payload, dict) and "expr" in payload
                    else payload
                )
                if isinstance(expr_dict, dict):
                    try:
                        table[step] = from_dict(expr_dict)
                    except (KeyError, TypeError, ValueError):
                        continue
            out[algo] = table
        return out

    def check_costs(
        self, project: Project, costs: AlgorithmCosts
    ) -> Iterator[Finding]:
        baseline = self._load_baseline(project)
        if baseline is None:
            return
        pinned = baseline.get(costs.algorithm)
        if pinned is None:
            return
        envs = sample_envs()
        for name, step in costs.steps.items():
            old = pinned.get(name)
            if old is None or not step.bounded:
                continue
            witness = dominates(step.expr, old, envs)
            if witness is not None:
                yield self._finding(
                    costs,
                    step,
                    f"step {name!r}: derived bound {step.expr.render()} "
                    f"regressed past the baseline {old.render()} at "
                    f"({_fmt_env(witness)})",
                )


class DeadBoundRule(CostRule):
    code = "REP306"
    name = "dead-bound"
    summary = "a cost formula has no corresponding charge site (vacuous)"
    rationale = (
        "A bound proves nothing if the code it describes performs no "
        "accountable I/O: a paper formula for a step that never reaches "
        "a charge site, a numbered step that vanished from the entry "
        "point, or a contracted primitive whose body no longer touches "
        "the block layer all certify vacuously — usually a sign the "
        "charge sites moved and the trusted base went stale."
    )
    fix_hint = (
        "Re-point the contract/paper table at the real charge sites, or "
        "delete the stale formula so the certifier's trusted base stays "
        "minimal."
    )

    def check_costs(
        self, project: Project, costs: AlgorithmCosts
    ) -> Iterator[Finding]:
        table = PAPER_STEP_BOUNDS.get(costs.algorithm)
        if table is not None:
            for name, paper in table.items():
                is_zero = isinstance(paper, Const) and paper.value == 0.0
                if not is_zero:
                    step = costs.steps.get(name)
                    if step is None:
                        yield self._finding(
                            costs,
                            None,
                            f"paper formula for step {name!r} but the "
                            "entry point registers no such step",
                        )
                    elif not step.reaches_charge:
                        yield self._finding(
                            costs,
                            step,
                            f"step {name!r} has a paper formula but its "
                            "body reaches no charge site (vacuous bound)",
                        )
        for (algo, name), _contract in STEP_CONTRACTS.items():
            if algo != costs.algorithm:
                continue
            step = costs.steps.get(name)
            if step is not None and not step.reaches_charge:
                yield self._finding(
                    costs,
                    step,
                    f"step contract for {name!r} but the step body "
                    "reaches no charge site (vacuous bound)",
                )

    def check_project(self, project: Project) -> Iterator[Finding]:
        yield from super().check_project(project)
        yield from self._dead_contracts(project)

    def _dead_contracts(self, project: Project) -> Iterator[Finding]:
        by_tail: dict[str, list[FunctionInfo]] = {}
        for fn in project.functions.values():
            by_tail.setdefault(fn.qualname.split(".")[-1], []).append(fn)
        for cname in sorted(CONTRACTS):
            if cname in _DEAD_BOUND_EXEMPT:
                continue
            for fn in by_tail.get(cname, ()):
                if not self.applies_to(fn.module.relpath):
                    continue
                if not fn_reaches_charge(project, fn):
                    yield fn.module.finding(
                        self,  # type: ignore[arg-type]
                        fn.node,
                        f"contracted primitive {cname}() reaches no "
                        "charge site; its cost formula is vacuous",
                    )
