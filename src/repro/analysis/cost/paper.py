"""The paper's step formulas, in the certifier's symbolic algebra.

These are the *upper* side of the REP301 dominance check: each derived
expression from :mod:`repro.analysis.cost.interp` must be dominated by
(numerically never exceed, over :func:`repro.analysis.cost.sym.sample_envs`)
the paper formula recorded here for its (algorithm, step).

The formulas restate, symbolically, exactly what the dynamic auditor
(:mod:`repro.obs.audit`) computes per step from
:meth:`repro.pdm.model.PDMConfig.step1_io_bound` and
:func:`repro.core.theory.load_balance_bound`:

* step 1 — ``SLACK * max(2l(1+passes(l)), 4l)`` item I/Os
  (``step1_io_bound`` plus the run-formation floor, x1.3 dummy-run
  slack);
* step 2 — ``c (p-1) g B`` sampled items at block granularity;
* step 3 — ``2l + (p-1)(bitlen(n_blocks)+2) B`` with
  ``n_blocks = max(1, ceil(l/B))`` (materialising copy + binary-search
  probes);
* step 4 — ``l + (2l+d) + pB`` (send + bounded receive, one partial
  block per sender), the ``2l+d`` receive term being Theorem 1's
  ``load_balance_bound``;
* step 5 — the k-way-merge bound taken at the load-balance size
  ``lb = ceil(2l+d)``: ``SLACK * max(2lb(1+passes(lb)),
  2lb*max(1, levels(p))) + pB``.

The in-core algorithms (``in_core_psrs``, ``overpartition``,
``hyperquicksort``) sort entirely in memory, so the paper-side bound for
each of their steps is zero charged disk I/O.  DeWitt's sort is the
*contrast* algorithm from the paper's related-work discussion; the paper
states no per-step formula for it, so its entry maps to ``None`` and
REP301 skips it (its bounds are still derived, REP302/303/304-checked,
and certified dynamically).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.cost.charges import _merge_cost, _poly_cost
from repro.analysis.cost.sym import (
    ZERO,
    Add,
    BitLen,
    Ceil,
    Const,
    Div,
    Expr,
    Max,
    Mul,
    Sym,
)

_L = Sym("l")
_P = Sym("p")
_B = Sym("B")
_C = Sym("c")
_G = Sym("g")
_D = Sym("d")

#: Theorem 1's per-node final-merge load: ``lb = ceil(2l + d)``.
_LOAD_BALANCE = Ceil(Add((Mul((Const(2), _L)), _D)))

#: Algorithm 1's numbered steps — the certifier requires a derived,
#: non-vacuous bound for every one of these (REP306).
NUMBERED_STEPS: tuple[str, ...] = (
    "1:local-sort",
    "2:pivots",
    "3:partition",
    "4:redistribute",
    "5:final-merge",
)

_EXTERNAL_PSRS: dict[str, Expr] = {
    "1:local-sort": _poly_cost(_L),
    "2:pivots": Mul((_C, Add((_P, Const(-1))), _G, _B)),
    "3:partition": Add((
        Mul((Const(2), _L)),
        Mul((
            Add((_P, Const(-1))),
            Add((BitLen(Max((Const(1), Ceil(Div(_L, _B))))), Const(2))),
            _B,
        )),
    )),
    "4:redistribute": Add((
        _L,
        Add((Mul((Const(2), _L)), _D)),
        Mul((_P, _B)),
    )),
    "5:final-merge": _merge_cost(_LOAD_BALANCE, _P),
}

#: Paper formulas per algorithm and step.  ``None`` for a whole
#: algorithm means the paper offers no formula (REP301 does not apply);
#: a step name missing from a present table means the same for that
#: step (e.g. the recovery steps, which are outside Algorithm 1).
PAPER_STEP_BOUNDS: dict[str, Optional[dict[str, Expr]]] = {
    "external_psrs": _EXTERNAL_PSRS,
    "in_core_psrs": {
        "1:local-sort": ZERO,
        "2:pivots": ZERO,
        "3:partition": ZERO,
        "4:exchange": ZERO,
        "5:merge": ZERO,
    },
    "overpartition": {
        "1:sample-pivots": ZERO,
        "2:bucketize": ZERO,
        "3:assign": ZERO,
        "4:exchange": ZERO,
        "5:sort-buckets": ZERO,
    },
    "hyperquicksort": {
        "1:local-sort": ZERO,
        "level-*": ZERO,
    },
    "dewitt": None,
}


def paper_bound_for(algorithm: str, step: str) -> Optional[Expr]:
    """The paper's formula for (algorithm, step), if it states one."""
    table = PAPER_STEP_BOUNDS.get(algorithm)
    if table is None:
        return None
    return table.get(step)
