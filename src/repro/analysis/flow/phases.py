"""REP105: phase attribution — accounted I/O must happen under a step.

The telemetry bounds auditor folds block-I/O events into per-(step,
node) counters and checks them against the paper's step 1–5 formulas
(see ``docs/OBSERVABILITY.md``).  I/O charged *outside* any
``step(...)`` context lands in no counter, so a bound can be violated
without the auditor ever seeing it.

This rule proves the property statically, using the call graph: a
charged primitive call site is acceptable iff

* it is lexically inside ``with <obj>.step(...)`` (or a lambda run by
  a :class:`~repro.faults.recovery.StepRunner`), **or**
* its containing function is *fully attributed* — every known caller,
  transitively, reaches it under a step context (the fixpoint computed
  by :class:`~repro.analysis.flow.project.Project`).

Functions with **no** in-package callers are public entry points
(``sort_array``-style APIs and result accessors): attribution there is
the caller's contract, and flagging them would punish every library
function — so they are skipped, as are functions whose name is
address-taken (unknowable callers).  Charged primitives:

* block I/O — ``append_block``, ``read_block``, ``read_all``,
  ``write``, ``write_one`` method calls;
* network — ``<...>.network.transfer(...)``;
* comm — any SimComm operation (``send``/``gather``/``bcast``/
  ``scatter``/``alltoallv`` on a ``comm`` receiver).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding
from repro.analysis.flow.escape import _is_comm_call
from repro.analysis.flow.project import FunctionInfo, Project, name_chain
from repro.analysis.flow.typestate import DeepRule

_IO_METHODS = frozenset(
    {"append_block", "read_block", "read_all", "write", "write_one"}
)


def _is_charged_primitive(call: ast.Call) -> str | None:
    """The charge kind of a call site, or None if it charges nothing."""
    chain = name_chain(call.func)
    if not chain:
        return None
    tail = chain[-1]
    if tail == "transfer" and any("network" in p.lower() for p in chain[:-1]):
        return "network transfer"
    if _is_comm_call(call):
        return "comm operation"
    if tail in _IO_METHODS and len(chain) >= 2:
        return "block I/O"
    return None


class PhaseAttributionRule(DeepRule):
    code = "REP105"
    name = "unattributed-io"
    summary = "charged I/O reachable outside any step(...) context"
    rationale = (
        "I/O charged outside a step context lands in no per-step counter, "
        "so the bounds auditor can miss a violated paper bound entirely."
    )
    fix_hint = (
        "Wrap the call (or every call chain into its function) in "
        "`with cluster.step(name):` / StepRunner.run; setup excluded from "
        "measurement records why with # repro: noqa REP105(reason)."
    )
    scope = ("core/",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        for fn in project.functions_in(self.scope):
            if not self.applies_to(fn.module.relpath):
                continue
            if fn.fully_attributed:
                continue
            if not fn.callers and not fn.address_taken:
                continue  # public entry point: attribution is the caller's
            if fn.address_taken and not fn.callers:
                continue  # callback with unknowable callers
            for site in fn.calls:
                if site.under_step:
                    continue
                kind = _is_charged_primitive(site.node)
                if kind is None:
                    continue
                target = ".".join(name_chain(site.node.func))
                yield fn.module.finding(
                    self,  # type: ignore[arg-type]
                    site.node,
                    f"{kind} {target}() in {fn.qualname}() can execute "
                    "outside any step context (callers: "
                    f"{_caller_names(fn)}); the bounds auditor cannot "
                    "attribute it",
                )


def _caller_names(fn: FunctionInfo) -> str:
    names = sorted(
        {
            site.caller.qualname if site.caller is not None else "<module>"
            for site in fn.callers
            if not site.under_step
            and (site.caller is None or not site.caller.fully_attributed)
        }
    )
    return ", ".join(names) if names else "<none>"
