"""Flow-aware interprocedural analysis: the deep rules REP101..REP105.

Where :mod:`repro.analysis.rules` judges one statement at a time, this
subpackage builds a package-wide model (:mod:`.project`: call graph,
import resolution, step-context attribution), runs an intra-procedural
alias/typestate interpretation over every function (:mod:`.intra`), and
derives five rules from it:

=======  ====================  ==============================================
code     name                  invariant
=======  ====================  ==============================================
REP101   handle-leak           every BlockWriter is definitely closed
REP102   use-after-seal        no write/close on a sealed writer
REP103   read-never-written    no read of a provably-empty BlockFile
REP104   cross-node-escape     SimComm receiver copies are actually used
REP105   unattributed-io       charged I/O is reachable only under step(...)
=======  ====================  ==============================================

Entry point: :func:`analyze_deep`, wired into ``repro lint --deep`` with
the same finding/suppression/baseline machinery as the shallow pass.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.engine import (
    ALL_RULES as _NOQA_ALL,
    AnalysisError,
    AnalysisReport,
    FileReport,
    Suppression,
    iter_python_files,
    parse_noqa,
)
from repro.analysis.flow.escape import CrossNodeEscapeRule
from repro.analysis.flow.intra import TypestateInterpreter
from repro.analysis.flow.phases import PhaseAttributionRule
from repro.analysis.flow.project import Project
from repro.analysis.flow.typestate import (
    DeepRule,
    HandleLeakRule,
    ReadNeverWrittenRule,
    UseAfterSealRule,
)

#: version of the flow (deep) engine, reported in the JSON payload
FLOW_ENGINE_VERSION = "1.0"

#: all deep rules, in code order — the registry the CLI and tests use
DEEP_RULES: tuple[DeepRule, ...] = (
    HandleLeakRule(),
    UseAfterSealRule(),
    ReadNeverWrittenRule(),
    CrossNodeEscapeRule(),
    PhaseAttributionRule(),
)

DEEP_RULES_BY_CODE: dict[str, DeepRule] = {r.code: r for r in DEEP_RULES}

__all__ = [
    "DEEP_RULES",
    "DEEP_RULES_BY_CODE",
    "FLOW_ENGINE_VERSION",
    "DeepRule",
    "Project",
    "TypestateInterpreter",
    "analyze_deep",
    "analyze_deep_source",
    "get_deep_rules",
    "load_project",
]


def get_deep_rules(codes: Sequence[str] | None = None) -> tuple[DeepRule, ...]:
    """Resolve ``--rule`` selections against the deep registry."""
    if not codes:
        return DEEP_RULES
    out = []
    for code in codes:
        rule = DEEP_RULES_BY_CODE.get(code.upper())
        if rule is None:
            raise AnalysisError(
                f"unknown deep rule {code!r}; have "
                f"{', '.join(sorted(DEEP_RULES_BY_CODE))}"
            )
        out.append(rule)
    return tuple(out)


def load_project(paths: Iterable[str | Path]) -> Project:
    """Parse every ``.py`` file under ``paths`` into one :class:`Project`."""
    sources = []
    for p in iter_python_files(paths):
        try:
            source = p.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"{p}: cannot read: {exc}") from exc
        sources.append((source, str(p), p.as_posix()))
    return Project.from_sources(sources)


def _run_project(
    project: Project, rules: Sequence[DeepRule]
) -> AnalysisReport:
    """Run deep rules over a built project, honouring noqa directives."""
    by_display: dict[str, FileReport] = {}
    noqa_by_display: dict[str, dict[int, dict[str, str]]] = {}
    for module in project.modules.values():
        by_display[module.display_path] = FileReport(path=module.display_path)
        noqa_by_display[module.display_path] = parse_noqa(module.lines)
    for rule in rules:
        for finding in rule.check_project(project):
            report = by_display[finding.path]
            directives = noqa_by_display[finding.path].get(finding.line)
            if directives is not None and (
                _NOQA_ALL in directives or finding.rule in directives
            ):
                reason = directives.get(
                    finding.rule, directives.get(_NOQA_ALL, "")
                )
                report.suppressed.append(Suppression(finding, reason))
            else:
                report.findings.append(finding)
    report_out = AnalysisReport()
    for file_report in by_display.values():
        file_report.findings.sort()
        report_out.files.append(file_report)
    return report_out


def analyze_deep(
    paths: Iterable[str | Path],
    rules: Sequence[DeepRule] | None = None,
    project: Project | None = None,
) -> AnalysisReport:
    """Build the project model for ``paths`` and run the deep rules.

    Pass a prebuilt ``project`` to share the model (and its rule caches)
    with other passes over the same file set.
    """
    if project is None:
        project = load_project(paths)
    return _run_project(project, DEEP_RULES if rules is None else rules)


def analyze_deep_source(
    source: str,
    path: str,
    rules: Sequence[DeepRule] | None = None,
) -> FileReport:
    """Deep-analyse one module given as text (the test-fixture entry).

    The module is its own one-file project: imports into the rest of the
    package resolve to nothing, so interprocedural facts are local — which
    is exactly what rule fixtures want.
    """
    project = Project.from_sources([(source, path, path)])
    report = _run_project(project, DEEP_RULES if rules is None else rules)
    for file_report in report.files:
        if file_report.path == path:
            return file_report
    return FileReport(path=path)  # pragma: no cover - defensive
