"""Package model for the flow engine: modules, functions, call graph.

The shallow rules (REP001..REP008) look at one statement at a time; the
flow rules need to know *who calls whom* and *under which step context*.
This module builds that model:

* every ``repro`` module is parsed once into a :class:`ModuleInfo`
  (tree + lines + import table);
* every function/method gets a :class:`FunctionInfo` keyed by
  ``"<relpath>::<qualname>"``, holding its outgoing call sites and the
  incoming call sites discovered across the whole package;
* call targets are resolved for plain names (including nested
  functions and ``self.`` methods), imported names (``from repro.x
  import f``) and module attributes (``import repro.x as m; m.f()``);
* every call site records whether it is *lexically under a step
  context*: inside ``with <obj>.step(...)`` or inside a lambda passed
  to a ``StepRunner``-style ``.run(...)`` call;
* a fixpoint pass then computes ``fully_attributed``: a function whose
  every (known) caller reaches it under a step context — the
  interprocedural fact REP105 is built on.

The model is deliberately conservative where Python is dynamic: a
function whose name is *address-taken* (referenced outside a direct
call or a runner registration) has unknown callers and is never marked
fully attributed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.analysis.engine import (
    AnalysisError,
    Finding,
    ModuleContext,
    Rule,
    package_relpath,
)

#: SimComm collective/point-to-point operations (receiver gets a copy).
COMM_OPS = frozenset({"send", "gather", "bcast", "scatter", "alltoallv"})


def name_chain(node: ast.expr) -> list[str]:
    """Dotted-name parts of a call target, skipping subscripts/calls.

    ``cluster.comm.send`` -> ``["cluster", "comm", "send"]``;
    ``cluster.nodes[i].disk.new_file`` -> ``["cluster", "nodes", "disk",
    "new_file"]``.  Returns ``[]`` for targets with no name at all.
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        else:
            break
    parts.reverse()
    return parts


def _is_step_with_item(item: ast.withitem) -> bool:
    """True for ``with <obj>.step(...)`` items (any receiver)."""
    ctx = item.context_expr
    if not isinstance(ctx, ast.Call):
        return False
    chain = name_chain(ctx.func)
    return bool(chain) and chain[-1] == "step"


def _is_runner_run(call: ast.Call) -> bool:
    """True for ``<runner-ish>.run(...)`` — the StepRunner entry point."""
    chain = name_chain(call.func)
    return (
        len(chain) >= 2
        and chain[-1] == "run"
        and any("runner" in part.lower() for part in chain[:-1])
    )


@dataclass
class CallSite:
    """One resolved-or-not call expression inside a module."""

    module: "ModuleInfo"
    caller: "FunctionInfo | None"  # None at module level
    node: ast.Call
    callee: "FunctionInfo | None"  # None when unresolvable
    under_step: bool


@dataclass
class FunctionInfo:
    """One function or method and its interprocedural facts."""

    key: str  # "<relpath>::<qualname>"
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    is_method: bool = False
    calls: list[CallSite] = field(default_factory=list)
    callers: list[CallSite] = field(default_factory=list)
    #: registered with a StepRunner-style ``.run(...)`` (by name or lambda)
    runner_attributed: bool = False
    #: name referenced outside direct calls — callers are unknowable
    address_taken: bool = False
    #: every known caller reaches this function under a step context
    fully_attributed: bool = False


@dataclass
class ModuleInfo:
    """One parsed module plus its import table and function map."""

    relpath: str  # package-relative ("core/external_psrs.py")
    display_path: str
    tree: ast.Module
    lines: list[str]
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: local name -> (module relpath, attr-or-None)
    imports: dict[str, tuple[str, str | None]] = field(default_factory=dict)

    def context(self) -> ModuleContext:
        return ModuleContext(
            path=self.relpath,
            tree=self.tree,
            lines=self.lines,
            display_path=self.display_path,
        )

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        return self.context().finding(rule, node, message)


def _module_name_to_relpath(dotted: str) -> str | None:
    """``repro.core.partition`` -> ``core/partition.py`` (None if foreign)."""
    parts = dotted.split(".")
    if parts[0] != "repro":
        return None
    rel = parts[1:]
    if not rel:
        return "__init__.py"
    return "/".join(rel) + ".py"


class Project:
    """The whole-package model the deep rules run over."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}  # by relpath
        self.functions: dict[str, FunctionInfo] = {}  # by key
        #: scratch shared between deep rules (e.g. cached typestate runs)
        self.cache: dict[str, object] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: Iterable[tuple[str, str, str]]) -> "Project":
        """Build from ``(source, path, display_path)`` triples."""
        project = cls()
        for source, path, display in sources:
            relpath = package_relpath(path)
            try:
                tree = ast.parse(source, filename=display)
            except SyntaxError as exc:
                raise AnalysisError(f"{display}: cannot parse: {exc}") from exc
            module = ModuleInfo(
                relpath=relpath,
                display_path=display,
                tree=tree,
                lines=source.splitlines(),
            )
            project.modules[relpath] = module
        for module in project.modules.values():
            project._collect_defs(module)
        for module in project.modules.values():
            project._resolve_imports(module)
        for module in project.modules.values():
            _CallGraphWalker(project, module).walk_module()
        project._propagate_attribution()
        return project

    def _collect_defs(self, module: ModuleInfo) -> None:
        def visit(node: ast.AST, prefix: str, in_class: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{child.name}"
                    info = FunctionInfo(
                        key=f"{module.relpath}::{qualname}",
                        module=module,
                        node=child,
                        qualname=qualname,
                        is_method=in_class,
                    )
                    module.functions[qualname] = info
                    self.functions[info.key] = info
                    visit(child, f"{qualname}.", False)
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}{child.name}.", True)
                else:
                    visit(child, prefix, in_class)

        visit(module.tree, "", False)

    def _resolve_imports(self, module: ModuleInfo) -> None:
        pkg_parts = module.relpath.split("/")[:-1]  # for relative imports
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    rel = _module_name_to_relpath(alias.name)
                    if rel is not None:
                        local = alias.asname or alias.name.split(".")[0]
                        if alias.asname or "." not in alias.name:
                            module.imports[local] = (rel, None)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                    dotted = ".".join(["repro", *base, node.module or ""]).rstrip(".")
                else:
                    dotted = node.module or ""
                rel = _module_name_to_relpath(dotted)
                if rel is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    submodule = _module_name_to_relpath(f"{dotted}.{alias.name}")
                    if submodule in self.modules:
                        module.imports[local] = (submodule, None)
                    else:
                        module.imports[local] = (rel, alias.name)

    # -- resolution helpers (used by the walker) ----------------------------

    def resolve_name(
        self, module: ModuleInfo, scopes: Sequence[FunctionInfo], name: str
    ) -> FunctionInfo | None:
        """Resolve a bare-name reference from inside ``scopes``."""
        for scope in reversed(scopes):
            nested = module.functions.get(f"{scope.qualname}.{name}")
            if nested is not None:
                return nested
        local = module.functions.get(name)
        if local is not None:
            return local
        target = module.imports.get(name)
        if target is not None:
            relpath, attr = target
            if attr is not None:
                other = self.modules.get(relpath)
                if other is not None:
                    return other.functions.get(attr)
        return None

    def resolve_attribute(
        self,
        module: ModuleInfo,
        scopes: Sequence[FunctionInfo],
        class_name: str | None,
        node: ast.Attribute,
    ) -> FunctionInfo | None:
        """Resolve ``m.f`` (imported module attr) and ``self.f`` (method)."""
        if isinstance(node.value, ast.Name):
            base = node.value.id
            if base == "self" and class_name is not None:
                return module.functions.get(f"{class_name}.{node.attr}")
            target = module.imports.get(base)
            if target is not None and target[1] is None:
                other = self.modules.get(target[0])
                if other is not None:
                    return other.functions.get(node.attr)
        return None

    # -- attribution fixpoint -----------------------------------------------

    def _propagate_attribution(self) -> None:
        """Monotone fixpoint for :attr:`FunctionInfo.fully_attributed`.

        Starts everywhere-False and only ever flips False->True, so the
        iteration terminates in at most ``len(functions)`` rounds.
        """
        changed = True
        while changed:
            changed = False
            for fn in self.functions.values():
                if fn.fully_attributed:
                    continue
                if fn.runner_attributed:
                    fn.fully_attributed = True
                    changed = True
                    continue
                if fn.address_taken or not fn.callers:
                    continue
                if all(
                    site.under_step
                    or (site.caller is not None and site.caller.fully_attributed)
                    for site in fn.callers
                ):
                    fn.fully_attributed = True
                    changed = True

    # -- queries -------------------------------------------------------------

    def functions_in(self, prefixes: Sequence[str]) -> Iterator[FunctionInfo]:
        for fn in self.functions.values():
            if any(fn.module.relpath.startswith(p) for p in prefixes):
                yield fn


class _CallGraphWalker:
    """One pass over a module: call sites, step contexts, registrations."""

    def __init__(self, project: Project, module: ModuleInfo) -> None:
        self.project = project
        self.module = module

    def walk_module(self) -> None:
        self._walk_body(self.module.tree.body, scopes=[], class_name=None,
                        under_step=False)

    # The walker is hand-rolled (not ast.NodeVisitor) because the three
    # context facts — enclosing function, enclosing class, step context —
    # must flow *down* specific edges only (e.g. a lambda argument of a
    # runner.run call is under-step; its sibling arguments are not).

    def _walk_body(
        self,
        stmts: Sequence[ast.stmt],
        scopes: list[FunctionInfo],
        class_name: str | None,
        under_step: bool,
    ) -> None:
        for stmt in stmts:
            self._walk(stmt, scopes, class_name, under_step)

    def _walk(
        self,
        node: ast.AST,
        scopes: list[FunctionInfo],
        class_name: str | None,
        under_step: bool,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            prefix = f"{scopes[-1].qualname}." if scopes else (
                f"{class_name}." if class_name else ""
            )
            info = self.module.functions.get(f"{prefix}{node.name}")
            if info is None:  # pragma: no cover - defensive
                return
            for default in [*node.args.defaults, *node.args.kw_defaults]:
                if default is not None:
                    self._walk(default, scopes, class_name, under_step)
            # a fresh function body starts outside any step context
            self._walk_body(node.body, [*scopes, info], None, False)
            return
        if isinstance(node, ast.ClassDef):
            self._walk_body(node.body, scopes, node.name, under_step)
            return
        if isinstance(node, ast.Lambda):
            self._walk(node.body, scopes, class_name, under_step)
            return
        if isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
            steps_here = any(_is_step_with_item(item) for item in node.items)
            for item in node.items:
                self._walk(item.context_expr, scopes, class_name, under_step)
            self._walk_body(node.body, scopes, class_name,
                            under_step or steps_here)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, scopes, class_name, under_step)
            return
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            target = self.project.resolve_name(self.module, scopes, node.id)
            if target is not None:
                target.address_taken = True
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, scopes, class_name, under_step)

    def _visit_call(
        self,
        node: ast.Call,
        scopes: list[FunctionInfo],
        class_name: str | None,
        under_step: bool,
    ) -> None:
        callee = self._resolve_call_target(node.func, scopes, class_name)
        caller = scopes[-1] if scopes else None
        site = CallSite(
            module=self.module,
            caller=caller,
            node=node,
            callee=callee,
            under_step=under_step,
        )
        if caller is not None:
            caller.calls.append(site)
        if callee is not None:
            callee.callers.append(site)

        runner_call = _is_runner_run(node)
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            if runner_call and isinstance(arg, ast.Name):
                # fn registered with a StepRunner: it runs under its step
                target = self.project.resolve_name(self.module, scopes, arg.id)
                if target is not None:
                    target.runner_attributed = True
                    continue
            if runner_call and isinstance(arg, ast.Lambda):
                # the lambda body executes inside the runner's step
                self._walk(arg.body, scopes, class_name, True)
                continue
            self._walk(arg, scopes, class_name, under_step)
        # attribute chains in the target may contain nested calls/names
        fn: ast.expr = node.func
        if not isinstance(fn, ast.Name):
            for child in ast.iter_child_nodes(fn):
                self._walk(child, scopes, class_name, under_step)

    def _resolve_call_target(
        self,
        fn: ast.expr,
        scopes: list[FunctionInfo],
        class_name: str | None,
    ) -> FunctionInfo | None:
        if isinstance(fn, ast.Name):
            return self.project.resolve_name(self.module, scopes, fn.id)
        if isinstance(fn, ast.Attribute):
            cls = class_name
            if cls is None and scopes:
                # inside a method, recover the class from the qualname
                head = scopes[0].qualname.split(".")[0]
                if head and head[0].isupper():
                    cls = head
            return self.project.resolve_attribute(self.module, scopes, cls, fn)
        return None
