"""REP101..REP103: BlockFile/BlockWriter handle-lifecycle rules.

All three rules share one :class:`~repro.analysis.flow.intra.TypestateInterpreter`
run per function (cached on the project), and split its definite events
by kind:

* **REP101 handle-leak** — a writer still open at a normal function
  exit leaks its B-item memory reservation and silently drops its
  buffered tail (the file is short; every downstream count is wrong).
* **REP102 use-after-seal** — ``close()`` on a definitely-closed
  writer, or ``write``/``write_one`` on a definitely-sealed one (the
  latter raises ``ValueError`` at runtime; both mean the lifecycle
  bookkeeping around the call site is confused).
* **REP103 read-never-written** — constructing a ``BlockReader`` over,
  or ``read_block``/``read_all`` from, a file that is definitely empty
  and never had a writer attached: the read raises (or yields nothing)
  and usually indicates the write leg of a transfer was dropped.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding
from repro.analysis.flow.intra import TypestateEvent, TypestateInterpreter
from repro.analysis.flow.project import FunctionInfo, Project
from repro.analysis.rules import ACCOUNTED_CORE


class DeepRule:
    """Base for project-level rules (the flow engine's Rule protocol).

    Mirrors :class:`repro.analysis.engine.Rule` metadata (so findings,
    fingerprints, baselines and ``--list-rules`` work unchanged) but
    checks a whole :class:`Project` instead of one module.
    """

    code = "REP100"
    name = "deep-base"
    summary = ""
    rationale = ""
    fix_hint = ""
    scope: tuple[str, ...] = ()
    exempt: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        for entry in self.exempt:
            if entry.endswith("/"):
                if relpath.startswith(entry):
                    return False
            elif relpath == entry:
                return False
        if not self.scope:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope)

    def check_project(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover


_CACHE_KEY = "typestate-events"


def typestate_events(
    project: Project,
) -> list[tuple[FunctionInfo, TypestateEvent]]:
    """All definite lifecycle events in the project (cached on it)."""
    cached = project.cache.get(_CACHE_KEY)
    if cached is None:
        events: list[tuple[FunctionInfo, TypestateEvent]] = []
        for fn in project.functions.values():
            for event in TypestateInterpreter(fn.node).run():
                events.append((fn, event))
        project.cache[_CACHE_KEY] = events
        cached = events
    return cached  # type: ignore[return-value]


class _TypestateRule(DeepRule):
    """Shared plumbing: filter the cached events by kind and scope."""

    kinds: tuple[str, ...] = ()
    scope = ACCOUNTED_CORE

    def check_project(self, project: Project) -> Iterator[Finding]:
        for fn, event in typestate_events(project):
            if event.kind not in self.kinds:
                continue
            if not self.applies_to(fn.module.relpath):
                continue
            yield fn.module.finding(
                self,  # type: ignore[arg-type]  # duck-typed Rule metadata
                event.node,
                f"{event.obj_name}: {event.detail} [in {fn.qualname}()]",
            )


class HandleLeakRule(_TypestateRule):
    code = "REP101"
    name = "handle-leak"
    summary = "BlockWriter definitely open at function exit"
    rationale = (
        "An unclosed writer never flushes its buffered partial block (the "
        "file silently loses its tail) and never releases its B-item "
        "memory reservation, so I/O counts and the M budget both drift."
    )
    fix_hint = (
        "Use `with BlockWriter(f, mem) as w:` or close in a finally: "
        "block (close_all for writer collections)."
    )
    kinds = ("leak",)


class UseAfterSealRule(_TypestateRule):
    code = "REP102"
    name = "use-after-seal"
    summary = "write after close/abandon, or a definite double close"
    rationale = (
        "write()/write_one() on a sealed writer raises ValueError at "
        "runtime; a definite second close() is dead code that signals the "
        "surrounding lifecycle logic is confused."
    )
    fix_hint = (
        "Restructure so the writer is sealed exactly once, after the last "
        "write; use abandon() on error paths."
    )
    kinds = ("write_after_seal", "double_close")


class ReadNeverWrittenRule(_TypestateRule):
    code = "REP103"
    name = "read-never-written"
    summary = "reading a BlockFile that is definitely never written"
    rationale = (
        "A BlockReader/read_block over a provably-empty file raises or "
        "yields nothing — almost always a dropped write leg of a "
        "distribution/transfer, which under-counts I/O on the write side."
    )
    fix_hint = (
        "Write (and close) the file before reading it, or pass the "
        "populated file handle instead of a freshly created one."
    )
    kinds = ("read_never_written",)
