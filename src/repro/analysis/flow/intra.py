"""Intra-procedural typestate interpretation for BlockFile handles.

An abstract interpreter over one function body tracking every
``BlockFile`` / ``BlockWriter`` / ``BlockReader`` the function creates:

* **allocation sites** are the abstract objects; plain ``a = b``
  assignments alias two names to the same object (the intra-module
  alias analysis the call graph promises);
* each object carries a *state set* — writers move through
  ``{open} -> {closed}`` (or ``{abandoned}``), files through
  ``{empty} -> {written}`` — and branch joins union the sets, so a
  reported seal/read event is *definite*: it happens on **all** paths
  that reach the statement, never "might happen";
* an object **escapes** (and stops being judged) the moment the
  function loses custody: returned, yielded, stored into a container
  or attribute, passed to an unknown call, or captured by a nested
  function.

The checks:

* ``leak`` — a non-escaped writer still open on **some** normal exit
  path (its buffered tail is never flushed and its B-item memory
  reservation never released) — the one *may*-check, because a close
  on only one branch is exactly the classic partial-close bug;
* ``double_close`` — ``close()`` on a definitely-closed writer (dead
  code at best, a confused lifecycle always; ``abandon()`` -> ``close()``
  is the sanctioned error-path idiom and is not reported);
* ``write_after_seal`` — ``write``/``write_one`` on a writer that is
  definitely closed or abandoned (raises ``ValueError`` at runtime);
* ``read_never_written`` — a ``BlockReader``/``read_block``/``read_all``
  over a file that is definitely empty and never had a writer attached.

``try`` bodies are joined pessimistically (a fault can interrupt the
body anywhere), loops run to a two-pass approximate fixpoint, and both
checks and state transitions only fire on definite state sets — the
standard recipe for a lint that must not cry wolf.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.flow.project import name_chain

#: constructor / factory spellings that create tracked objects
_WRITER_CTORS = {"BlockWriter"}
_READER_CTORS = {"BlockReader"}
_FILE_CTORS = {"BlockFile", "DiskBackedBlockFile", "StripedFile"}
_FILE_FACTORIES = {"new_file"}

_WRITE_METHODS = {"write", "write_one"}
_FILE_READ_METHODS = {"read_block", "read_all", "to_array"}

#: sentinel: a creation-shaped call that was fully handled but yields no
#: tracked object (reader construction)
_HANDLED = object()


@dataclass
class TypestateEvent:
    """One definite lifecycle violation, located at an AST node."""

    kind: str  # "leak" | "double_close" | "write_after_seal" | "read_never_written"
    node: ast.AST
    obj_name: str
    detail: str


@dataclass(eq=False)
class AbstractObject:
    """One allocation site (identity = object identity)."""

    kind: str  # "writer" | "file"
    origin: ast.AST
    name: str
    file: "AbstractObject | None" = None  # writers: the file they feed
    writer_attached: bool = False  # files: ever had a writer/appender


class Env:
    """Variable bindings plus per-object state for one program point."""

    def __init__(self) -> None:
        self.vars: dict[str, AbstractObject] = {}
        self.states: dict[int, frozenset[str]] = {}
        self.escaped: set[int] = set()

    def copy(self) -> "Env":
        out = Env()
        out.vars = dict(self.vars)
        out.states = dict(self.states)
        out.escaped = set(self.escaped)
        return out

    def state_of(self, obj: AbstractObject) -> frozenset[str]:
        return self.states.get(id(obj), frozenset())

    def set_state(self, obj: AbstractObject, states: frozenset[str]) -> None:
        self.states[id(obj)] = states

    def escape(self, obj: AbstractObject) -> None:
        self.escaped.add(id(obj))

    def is_escaped(self, obj: AbstractObject) -> bool:
        return id(obj) in self.escaped


def _join(a: Env | None, b: Env | None) -> Env | None:
    if a is None:
        return b
    if b is None:
        return a
    out = Env()
    for name, obj in a.vars.items():
        if b.vars.get(name) is obj:
            out.vars[name] = obj  # drop names the branches bind differently
    for key in a.states.keys() | b.states.keys():
        out.states[key] = a.states.get(key, frozenset()) | b.states.get(
            key, frozenset()
        )
    out.escaped = a.escaped | b.escaped
    return out


class TypestateInterpreter:
    """Run the typestate abstraction over one function body."""

    def __init__(self, fn_node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.fn = fn_node
        self.events: list[TypestateEvent] = []
        self.objects: list[AbstractObject] = []
        self._exit_envs: list[Env] = []
        self._reported: set[tuple[str, int]] = set()
        #: writers currently open via an enclosing ``with`` — closed by
        #: __exit__ even when a return statement leaves the block early
        self._with_stack: list[AbstractObject] = []

    def run(self) -> list[TypestateEvent]:
        env = self.exec_block(self.fn.body, Env())
        if env is not None:
            self._exit_envs.append(env)
        self._check_leaks()
        return self.events

    # -- events --------------------------------------------------------------

    def _emit(self, kind: str, node: ast.AST, obj: AbstractObject, detail: str) -> None:
        key = (kind, id(obj))
        if key in self._reported:
            return  # one report per (check, allocation site)
        self._reported.add(key)
        self.events.append(TypestateEvent(kind, node, obj.name, detail))

    def _check_leaks(self) -> None:
        for env in self._exit_envs:
            for obj in self.objects:
                if obj.kind != "writer" or env.is_escaped(obj):
                    continue
                if "open" in env.state_of(obj):
                    self._emit(
                        "leak", obj.origin, obj,
                        "writer can still be open at function exit: the "
                        "buffered tail is never flushed and its B-item "
                        "reservation never released",
                    )

    # -- statements ----------------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt], env: Env) -> Env | None:
        cur: Env | None = env
        for stmt in stmts:
            if cur is None:
                return None  # unreachable after return/raise
            cur = self.exec_stmt(stmt, cur)
        return cur

    def exec_stmt(self, stmt: ast.stmt, env: Env) -> Env | None:
        if isinstance(stmt, ast.Assign):
            return self._exec_assign(stmt, env)
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                fake = ast.Assign(targets=[stmt.target], value=stmt.value)
                ast.copy_location(fake, stmt)
                return self._exec_assign(fake, env)
            if stmt.value is not None:
                self.eval_expr(stmt.value, env)
            return env
        if isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value, env)
            return env
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval_escaping(stmt.value, env)
            exit_env = env.copy()
            for obj in self._with_stack:  # __exit__ still closes these
                exit_env.set_state(obj, frozenset({"closed"}))
            self._exit_envs.append(exit_env)
            return None
        if isinstance(stmt, ast.Raise):
            return None  # error exits are not judged for leaks
        if isinstance(stmt, ast.If):
            self.eval_expr(stmt.test, env)
            out_body = self.exec_block(stmt.body, env.copy())
            out_else = self.exec_block(stmt.orelse, env.copy())
            return _join(out_body, out_else)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval_expr(stmt.iter, env)
            for sub in ast.walk(stmt.target):
                if isinstance(sub, ast.Name):
                    env.vars.pop(sub.id, None)  # loop target rebinds
            merged = env.copy()
            for _ in range(2):  # two-pass approximate fixpoint
                out = self.exec_block(stmt.body, merged.copy())
                joined = _join(merged, out)
                assert joined is not None
                merged = joined
            out_else = self.exec_block(stmt.orelse, merged.copy())
            return _join(_join(env, merged), out_else)
        if isinstance(stmt, ast.While):
            self.eval_expr(stmt.test, env)
            merged = env.copy()
            for _ in range(2):
                out = self.exec_block(stmt.body, merged.copy())
                joined = _join(merged, out)
                assert joined is not None
                merged = joined
            out_else = self.exec_block(stmt.orelse, merged.copy())
            return _join(_join(env, merged), out_else)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_with(stmt, env)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, env)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            self._escape_captured(stmt, env)
            return env
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Pass,
                             ast.Import, ast.ImportFrom, ast.Global,
                             ast.Nonlocal)):
            return env
        if isinstance(stmt, (ast.Assert, ast.Delete, ast.AugAssign)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval_expr(child, env)
            return env
        # anything else: evaluate its expressions conservatively
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.eval_expr(child, env)
        return env

    def _exec_assign(self, stmt: ast.Assign, env: Env) -> Env:
        value = stmt.value
        created = self._creation(value, env, stmt)
        if created is _HANDLED:
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.vars.pop(target.id, None)
                else:
                    self.eval_expr(target, env)
            return env
        if isinstance(created, AbstractObject):
            name_targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            rest = [t for t in stmt.targets if not isinstance(t, ast.Name)]
            for target in name_targets:
                env.vars[target.id] = created
            if rest:  # stored straight into a container/attribute
                env.escape(created)
                for target in rest:
                    self.eval_expr(target, env)
            return env
        if isinstance(value, ast.Name) and value.id in env.vars:
            obj = env.vars[value.id]
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.vars[target.id] = obj  # alias
                else:
                    self._store_escape(target, obj, env)
            return env
        # generic RHS: evaluate (checks + call-arg escapes), then rebind
        self.eval_expr(value, env)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                env.vars.pop(target.id, None)
            else:
                # a tracked value stored into a container/attribute escapes
                self._escape_expr(value, env)
                self.eval_expr(target, env)
        return env

    def _store_escape(self, target: ast.expr, obj: AbstractObject, env: Env) -> None:
        """``container[i] = obj`` / ``self.x = obj`` lose custody."""
        env.escape(obj)
        self.eval_expr(target, env)

    def _exec_with(self, stmt: ast.With | ast.AsyncWith, env: Env) -> Env | None:
        opened: list[AbstractObject] = []
        for item in stmt.items:
            created = self._creation(item.context_expr, env, item.context_expr)
            if isinstance(created, AbstractObject):
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    env.vars[item.optional_vars.id] = created
                opened.append(created)
            elif created is not _HANDLED:
                self.eval_expr(item.context_expr, env)
        with_writers = [o for o in opened if o.kind == "writer"]
        self._with_stack.extend(with_writers)
        out = self.exec_block(stmt.body, env)
        if with_writers:
            del self._with_stack[-len(with_writers):]
        if out is None:
            return None
        for obj in with_writers:
            out.set_state(obj, frozenset({"closed"}))  # __exit__ closes
        return out

    def _exec_try(self, stmt: ast.Try, env: Env) -> Env | None:
        pre = env.copy()
        out_body = self.exec_block(stmt.body, env)
        # a fault can interrupt the body anywhere: handlers start from the
        # pessimistic join of "nothing ran" and "everything ran"
        handler_base = _join(pre.copy(), out_body.copy() if out_body else None)
        assert handler_base is not None
        outs: list[Env | None] = []
        if out_body is not None:
            out_else = self.exec_block(stmt.orelse, out_body)
            outs.append(out_else)
        for handler in stmt.handlers:
            outs.append(self.exec_block(handler.body, handler_base.copy()))
        merged: Env | None = None
        for out in outs:
            merged = _join(merged, out)
        if merged is None:
            merged = handler_base
        if stmt.finalbody:
            return self.exec_block(stmt.finalbody, merged)
        if all(out is None for out in outs):
            return None
        return merged

    # -- expressions ---------------------------------------------------------

    def _creation(
        self, expr: ast.expr, env: Env, origin: ast.AST
    ) -> "AbstractObject | object | None":
        """Recognise tracked-object creation.

        Returns the new :class:`AbstractObject`, the ``_HANDLED`` sentinel
        for fully-processed reader constructions, or None for ordinary
        calls the caller should evaluate itself.
        """
        if not isinstance(expr, ast.Call):
            return None
        chain = name_chain(expr.func)
        if not chain:
            return None
        tail = chain[-1]
        if tail in _WRITER_CTORS:
            file_obj = self._arg_object(expr, 0, "file", env)
            if file_obj is not None:
                file_obj.writer_attached = True
            obj = AbstractObject("writer", origin, self._describe(expr), file=file_obj)
            self.objects.append(obj)
            env.set_state(obj, frozenset({"open"}))
            self._eval_args_skipping(expr, env, skip_first=True)
            return obj
        if tail in _FILE_CTORS or tail in _FILE_FACTORIES:
            obj = AbstractObject("file", origin, self._describe(expr))
            self.objects.append(obj)
            env.set_state(obj, frozenset({"empty"}))
            self._eval_args_skipping(expr, env, skip_first=False)
            return obj
        if tail in _READER_CTORS:
            file_obj = self._arg_object(expr, 0, "file", env)
            if file_obj is not None:
                self._check_read(expr, file_obj, env)
            self._eval_args_skipping(expr, env, skip_first=True)
            return _HANDLED  # readers hold no reservation; nothing to track
        return None

    def _arg_object(
        self, call: ast.Call, pos: int, kind: str, env: Env
    ) -> AbstractObject | None:
        if len(call.args) > pos and isinstance(call.args[pos], ast.Name):
            obj = env.vars.get(call.args[pos].id)
            if obj is not None and obj.kind == kind:
                return obj
        return None

    def _eval_args_skipping(self, call: ast.Call, env: Env, skip_first: bool) -> None:
        args = call.args[1:] if skip_first else call.args
        for arg in args:
            self._call_arg(arg, env)
        for kw in call.keywords:
            self._call_arg(kw.value, env)

    def _call_arg(self, arg: ast.expr, env: Env) -> None:
        """Tracked objects passed to an unknown callee escape."""
        if isinstance(arg, ast.Name) and arg.id in env.vars:
            env.escape(env.vars[arg.id])
            return
        self.eval_expr(arg, env)

    def eval_expr(self, expr: ast.expr, env: Env) -> None:
        """Generic expression walk: method checks + escapes, no creation."""
        if isinstance(expr, ast.Call):
            self._eval_call(expr, env)
            return
        if isinstance(expr, ast.Lambda):
            self._escape_captured(expr, env)
            return
        if isinstance(expr, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                             ast.DictComp)):
            # comprehensions: iterate/capture — conservative escape of any
            # tracked name referenced inside
            self._escape_captured(expr, env)
            return
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            if expr.value is not None:
                self._eval_escaping(expr.value, env)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.eval_expr(child, env)

    def _eval_call(self, call: ast.Call, env: Env) -> None:
        fn = call.func
        if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
            obj = env.vars.get(fn.value.id)
            if obj is not None:
                self._method_call(call, fn.attr, obj, env)
                for arg in call.args:
                    self._call_arg(arg, env)
                for kw in call.keywords:
                    self._call_arg(kw.value, env)
                return
        created = self._creation(call, env, call)
        if created is not None:
            return  # creation already registered / handled its own args
        if isinstance(fn, ast.expr) and not isinstance(fn, ast.Name):
            self.eval_expr(fn, env)
        for arg in call.args:
            self._call_arg(arg, env)
        for kw in call.keywords:
            self._call_arg(kw.value, env)

    def _method_call(
        self, call: ast.Call, method: str, obj: AbstractObject, env: Env
    ) -> None:
        if obj.kind == "writer":
            states = env.state_of(obj)
            if method == "close":
                if states == frozenset({"closed"}) and not env.is_escaped(obj):
                    self._emit(
                        "double_close", call, obj,
                        "close() on a definitely-closed writer (the second "
                        "close is dead; the lifecycle is confused)",
                    )
                env.set_state(obj, frozenset({"closed"}))
            elif method == "abandon":
                env.set_state(obj, frozenset({"abandoned"}))
            elif method in _WRITE_METHODS:
                if (
                    states
                    and "open" not in states
                    and states <= frozenset({"closed", "abandoned"})
                    and not env.is_escaped(obj)
                ):
                    self._emit(
                        "write_after_seal", call, obj,
                        f"{method}() on a sealed writer raises ValueError "
                        "at runtime",
                    )
                if obj.file is not None:
                    env.set_state(obj.file, frozenset({"written"}))
        elif obj.kind == "file":
            if method in _FILE_READ_METHODS:
                self._check_read(call, obj, env)
            elif method == "append_block":
                obj.writer_attached = True
                env.set_state(obj, frozenset({"written"}))
            elif method == "clear":
                env.set_state(obj, frozenset({"empty"}))

    def _check_read(self, node: ast.AST, obj: AbstractObject, env: Env) -> None:
        if (
            env.state_of(obj) == frozenset({"empty"})
            and not obj.writer_attached
            and not env.is_escaped(obj)
        ):
            self._emit(
                "read_never_written", node, obj,
                "reading a file that is definitely empty and never had a "
                "writer attached",
            )

    # -- escapes -------------------------------------------------------------

    def _eval_escaping(self, expr: ast.expr, env: Env) -> None:
        """Evaluate ``expr`` whose *value* leaves the function's custody."""
        created = self._creation(expr, env, expr)
        if isinstance(created, AbstractObject):
            env.escape(created)  # created straight into a return/yield
            return
        if created is _HANDLED:
            return
        self._escape_expr(expr, env)
        self.eval_expr(expr, env)

    def _escape_expr(self, expr: ast.expr, env: Env) -> None:
        """Objects named directly in ``expr`` escape (return/yield/store).

        Does **not** descend into calls: in ``return f.read_all()`` the
        *result* escapes, not the receiver ``f`` — the generic evaluation
        already escapes tracked call *arguments* via :meth:`_call_arg`.
        """
        if isinstance(expr, ast.Name) and expr.id in env.vars:
            env.escape(env.vars[expr.id])
            return
        if isinstance(expr, ast.Call):
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._escape_expr(child, env)

    def _escape_captured(self, node: ast.AST, env: Env) -> None:
        """Any tracked name referenced by a nested function/lambda escapes."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in env.vars:
                env.escape(env.vars[sub.id])

    @staticmethod
    def _describe(call: ast.Call) -> str:
        chain = name_chain(call.func)
        return ".".join(chain) if chain else "<handle>"
