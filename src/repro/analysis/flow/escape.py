"""REP104: cross-node escape analysis for SimComm results.

Every :class:`~repro.cluster.comm.SimComm` operation (``send``,
``gather``, ``bcast``, ``scatter``, ``alltoallv``) returns the
*receiver-side copies* of the payload — that copy is the whole point:
on a real cluster the receiver can only ever see its own copy, never
the sender's array.  Code that **discards the result** and keeps using
the sender's array has silently aliased mutable state across the node
boundary: the charged transfer moved nothing, and any mutation on
either "side" is visible on both — the simulated analogue of a shared-
memory race the syntactic REP008 could never see.

Two dataflow patterns are flagged, both per containing function:

* the comm call is an expression statement (result thrown away);
* the result is bound to a name that is never subsequently loaded.

``Network.transfer`` is *not* flagged: it is the charge-only primitive
(it returns nothing by design); discarding a SimComm result while
separately reusing local state must instead cite why the charge-only
shape is correct — e.g. with ``# repro: noqa REP104(reason)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding
from repro.analysis.flow.project import COMM_OPS, Project, name_chain
from repro.analysis.flow.typestate import DeepRule


def _is_comm_call(node: ast.Call) -> bool:
    chain = name_chain(node.func)
    return (
        len(chain) >= 2
        and chain[-1] in COMM_OPS
        and any("comm" in part.lower() for part in chain[:-1])
    )


class CrossNodeEscapeRule(DeepRule):
    code = "REP104"
    name = "cross-node-escape"
    summary = "SimComm result discarded: sender state aliased across nodes"
    rationale = (
        "SimComm ops return the receiver-side copies; discarding them and "
        "continuing to use the sender's array aliases mutable state "
        "between nodes — the transfer was charged but nothing moved."
    )
    fix_hint = (
        "Bind the result and make the receiver operate on its own copy "
        "(e.g. `part = comm.send(src, dst, part)`); if the exchange is "
        "deliberately charge-only, record why with # repro: noqa REP104."
    )
    scope = ("core/", "extsort/")

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module in project.modules.values():
            if not self.applies_to(module.relpath):
                continue
            for fn_node, comm_calls in _comm_calls_by_function(module.tree):
                loads = _name_loads(fn_node)
                for call, parent in comm_calls:
                    if isinstance(parent, ast.Expr):
                        yield module.finding(
                            self,  # type: ignore[arg-type]
                            call,
                            f"result of {'.'.join(name_chain(call.func))}() "
                            "discarded: the receiver-side copy is lost and "
                            "sender state stays aliased across nodes",
                        )
                    elif (
                        isinstance(parent, ast.Assign)
                        and len(parent.targets) == 1
                        and isinstance(parent.targets[0], ast.Name)
                        and loads.get(parent.targets[0].id, 0) == 0
                    ):
                        yield module.finding(
                            self,  # type: ignore[arg-type]
                            call,
                            f"result of {'.'.join(name_chain(call.func))}() "
                            f"bound to {parent.targets[0].id!r} but never "
                            "read: receivers never see their copies",
                        )


def _comm_calls_by_function(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, list[tuple[ast.Call, ast.AST]]]]:
    """Yield ``(function-or-module, [(comm_call, parent_stmt), ...])``."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent

    def owner(node: ast.AST) -> ast.AST:
        cur = parents.get(node)
        while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            cur = parents.get(cur)
        return cur if cur is not None else tree

    grouped: dict[int, tuple[ast.AST, list[tuple[ast.Call, ast.AST]]]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _is_comm_call(node):
            fn = owner(node)
            grouped.setdefault(id(fn), (fn, []))[1].append(
                (node, parents.get(node, tree))
            )
    yield from grouped.values()


def _name_loads(fn: ast.AST) -> dict[str, int]:
    loads: dict[str, int] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loads[node.id] = loads.get(node.id, 0) + 1
    return loads
