"""The REP rule set: codified simulation invariants.

Each rule is a syntactic approximation of a semantic invariant of the
cost model (see ``docs/ANALYSIS.md`` for the catalogue with bad/good
examples).  Approximations are deliberately conservative-but-auditable:
where a rule cannot see intent (a ``sorted()`` over an O(p) metadata
list vs. over record data), the inline ``# repro: noqa REPxxx(reason)``
hatch records the human judgement in place.

Scopes use package-relative path prefixes: the *accounted core* is
``core/``, ``extsort/`` and ``pdm/`` — code whose every data movement
must be charged; determinism and state rules apply package-wide.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.engine import AnalysisError, Finding, ModuleContext, Rule

#: The subpackages whose data plane must be fully accounted.
ACCOUNTED_CORE = ("core/", "extsort/", "pdm/")

_NUMPY_NAMES = {"np", "numpy"}


def _terminal_name(node: ast.expr) -> str:
    """Last dotted component of a call target (``a.b.C`` -> ``C``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _module_attr(node: ast.expr, modules: set[str]) -> tuple[str, str] | None:
    """``(module, attr)`` when ``node`` is ``<module>.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in modules
    ):
        return node.value.id, node.attr
    return None


class RawHostIORule(Rule):
    """REP001: raw host file I/O inside the accounted core.

    ``open()`` / ``os`` / ``shutil`` / ``tempfile`` / numpy file I/O in
    ``core``/``extsort``/``pdm`` moves bytes the :class:`SimDisk`
    counters never see, so the PDM block-I/O counts — the paper's
    result — silently under-report.  All storage must go through
    :class:`~repro.pdm.blockfile.BlockFile` on a :class:`SimDisk`.
    ``pdm/filestore.py`` is exempt: it *is* the sanctioned spill
    backend where simulated blocks meet the host filesystem.
    """

    code = "REP001"
    name = "raw-host-io"
    summary = "raw host file I/O bypasses SimDisk accounting"
    rationale = (
        "Bytes moved through open()/os/shutil/tempfile/numpy file I/O are "
        "invisible to IOStats, so measured block-I/O counts under-report."
    )
    fix_hint = (
        "Route data through BlockFile on a SimDisk (disk.new_file + "
        "BlockWriter/BlockReader); for host spill use pdm.filestore."
    )
    scope = ACCOUNTED_CORE
    exempt = ("pdm/filestore.py",)

    _OS_FILE_OPS = {
        "open", "read", "write", "close", "remove", "unlink", "rename",
        "replace", "mkdir", "makedirs", "rmdir", "truncate", "ftruncate",
        "mkstemp", "mkdtemp", "copy", "copyfile", "copytree", "move",
        "rmtree", "NamedTemporaryFile", "TemporaryFile", "TemporaryDirectory",
    }
    _NP_FILE_OPS = {"save", "load", "savez", "savez_compressed", "savetxt",
                    "loadtxt", "memmap", "fromfile"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            host = _module_attr(fn, {"os", "shutil", "tempfile", "io"})
            np_io = _module_attr(fn, _NUMPY_NAMES)
            if isinstance(fn, ast.Name) and fn.id == "open":
                yield ctx.finding(self, node, "raw open() in accounted core; "
                                  "route bytes through SimDisk/BlockFile")
            elif host is not None and host[1] in self._OS_FILE_OPS:
                yield ctx.finding(
                    self, node,
                    f"host file operation {host[0]}.{host[1]}() "
                    "bypasses SimDisk accounting",
                )
            elif np_io is not None and np_io[1] in self._NP_FILE_OPS:
                yield ctx.finding(
                    self, node,
                    f"numpy file I/O .{np_io[1]}() bypasses SimDisk accounting",
                )
            elif isinstance(fn, ast.Attribute) and fn.attr in {"tofile", "fromfile"}:
                yield ctx.finding(
                    self, node,
                    f".{fn.attr}() moves bytes outside the SimDisk cost model",
                )


class InCoreSortRule(Rule):
    """REP002: in-memory sort outside the sanctioned run-formation sites.

    An unbounded ``sorted()`` / ``.sort()`` / ``np.sort`` over record
    data defeats the point of the out-of-core algorithm: it can exceed
    the memory budget M and its comparisons dodge the CPU cost model.
    Sanctioned sorts either live in ``extsort/runs.py`` (run formation
    sorts exactly one M-sized memory load) or carry a ``# repro: noqa
    REP002(...)`` stating how the sort is bounded and charged.
    """

    code = "REP002"
    name = "incore-sort"
    summary = "in-memory sort outside sanctioned run-formation sites"
    rationale = (
        "A full in-memory sort can exceed the simulated memory budget M and "
        "performs comparisons the CPU cost model never charges."
    )
    fix_hint = (
        "Form bounded runs via extsort.runs and merge externally; if the "
        "sort is genuinely bounded (a sample, O(p) metadata) and charged, "
        "annotate it with # repro: noqa REP002(reason)."
    )
    scope = ACCOUNTED_CORE
    # runs.py is run formation (sorts exactly one M-sized load);
    # incore.py is the bounded, charged helper module the in-core
    # comparison engines are required to route their sorts through.
    exempt = ("extsort/runs.py", "core/incore.py")

    _NP_SORTS = {"sort", "argsort", "lexsort", "msort", "sort_complex",
                 "partition", "argpartition"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            np_sort = _module_attr(fn, _NUMPY_NAMES)
            if isinstance(fn, ast.Name) and fn.id == "sorted":
                if node.args and self._is_metadata_expr(node.args[0]):
                    continue  # provably O(p) metadata, not record data
                yield ctx.finding(
                    self, node,
                    "sorted() in accounted core; bound and charge it or use "
                    "the external-sort machinery",
                )
            elif np_sort is not None and np_sort[1] in self._NP_SORTS:
                yield ctx.finding(
                    self, node,
                    f"np.{np_sort[1]}() sorts in memory; unbounded input "
                    "breaks the M budget and dodges the CPU cost model",
                )
            elif isinstance(fn, ast.Attribute) and fn.attr in {"sort", "argsort"}:
                yield ctx.finding(
                    self, node,
                    f".{fn.attr}() sorts in memory; unbounded input breaks "
                    "the M budget and dodges the CPU cost model",
                )

    @classmethod
    def _is_metadata_expr(cls, node: ast.expr) -> bool:
        """True when the sorted() argument is provably O(p) metadata.

        Index/label orderings — ``range``/``enumerate``/``zip`` calls,
        dict views (``.items()``/``.keys()``/``.values()``), ``set()`` of
        one of those, or a comprehension iterating over one — are bounded
        by the cluster/step count, never by record data, so charging them
        is not required by the cost model.
        """
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            if isinstance(node.func, ast.Name) and name in {"range", "enumerate", "zip"}:
                return True
            if isinstance(node.func, ast.Attribute) and name in {"items", "keys", "values"}:
                return True
            if isinstance(node.func, ast.Name) and name == "set" and node.args:
                return cls._is_metadata_expr(node.args[0])
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            return cls._is_metadata_expr(node.generators[0].iter)
        return False


class NondeterminismRule(Rule):
    """REP003: unseeded randomness or wall-clock reads in simulation code.

    Runs must be bit-reproducible from their seeds — fault-plan replay,
    the determinism regression tests and every Table regeneration depend
    on it.  Wall-clock reads and global/unseeded RNGs make behaviour
    depend on the host instead of the seed.
    """

    code = "REP003"
    name = "nondeterminism"
    summary = "unseeded randomness or wall-clock time in simulation code"
    rationale = (
        "Fault-plan replay and the determinism regression suite require "
        "runs to be a pure function of their seeds; wall-clock and global "
        "RNG state make them a function of the host instead."
    )
    fix_hint = (
        "Thread an explicitly seeded np.random.Generator "
        "(np.random.default_rng(seed)) through the call chain; take time "
        "from the simulated clocks, never the host."
    )

    _TIME_FNS = {"time", "monotonic", "perf_counter", "process_time",
                 "time_ns", "monotonic_ns", "perf_counter_ns"}
    _DATETIME_FNS = {"now", "utcnow", "today"}
    _SEEDED_NP_RANDOM = {"default_rng", "Generator", "SeedSequence",
                         "BitGenerator", "PCG64", "Philox"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            wall = _module_attr(fn, {"time"})
            glob = _module_attr(fn, {"random", "secrets"})
            if wall is not None and wall[1] in self._TIME_FNS:
                yield ctx.finding(
                    self, node,
                    f"wall-clock time.{wall[1]}() in simulation code; "
                    "use the simulated clocks",
                )
            elif (
                isinstance(fn, ast.Attribute)
                and fn.attr in self._DATETIME_FNS
                and _terminal_name(fn.value) in {"datetime", "date"}
            ):
                yield ctx.finding(
                    self, node,
                    f"wall-clock {_terminal_name(fn.value)}.{fn.attr}() "
                    "breaks determinism",
                )
            elif glob is not None:
                yield ctx.finding(
                    self, node,
                    f"global {glob[0]}.{glob[1]}() RNG; "
                    "thread a seeded np.random.Generator instead",
                )
            elif (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Attribute)
                and fn.value.attr == "random"
                and isinstance(fn.value.value, ast.Name)
                and fn.value.value.id in _NUMPY_NAMES
                and fn.attr not in self._SEEDED_NP_RANDOM
            ):
                yield ctx.finding(
                    self, node,
                    f"legacy global np.random.{fn.attr}(); use a seeded "
                    "np.random.default_rng(seed) Generator",
                )
            elif isinstance(fn, ast.Attribute) and fn.attr == "uuid4":
                yield ctx.finding(self, node, "uuid4() is nondeterministic")
            if self._is_unseeded_default_rng(node):
                yield ctx.finding(
                    self, node,
                    "default_rng() without a seed is entropy-seeded and "
                    "breaks replay; pass an explicit seed",
                )

    @staticmethod
    def _is_unseeded_default_rng(node: ast.Call) -> bool:
        if _terminal_name(node.func) != "default_rng":
            return False
        if node.args or any(kw.arg == "seed" for kw in node.keywords):
            return False
        return True


class MagicBlockSizeRule(Rule):
    """REP004: hard-coded block size at a BlockFile construction site.

    Block size B is a PDM parameter (:class:`~repro.pdm.model.PDMConfig`
    / ``PSRSConfig.block_items``); a literal B frozen into a call site
    silently desynchronises from the configured geometry, producing
    files whose block counts no longer match the theoretical bounds.
    """

    code = "REP004"
    name = "magic-block-size"
    summary = "hard-coded block size instead of configured B"
    rationale = (
        "Files created with a literal B ignore the configured PDM geometry, "
        "so measured block-I/O counts stop matching the bounds under test."
    )
    fix_hint = (
        "Thread B from PDMConfig / PSRSConfig.block_items (or the sibling "
        "file's .B) into the construction site."
    )

    _FILE_CTORS_B_AT = {"BlockFile": 1, "DiskBackedBlockFile": 1,
                        "StripedFile": 1, "new_file": 0}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name not in self._FILE_CTORS_B_AT:
                continue
            pos = self._FILE_CTORS_B_AT[name]
            b_arg: ast.expr | None = None
            if len(node.args) > pos:
                b_arg = node.args[pos]
            for kw in node.keywords:
                if kw.arg == "B":
                    b_arg = kw.value
            if (
                b_arg is not None
                and isinstance(b_arg, ast.Constant)
                and isinstance(b_arg.value, int)
            ):
                yield ctx.finding(
                    self, node,
                    f"literal block size {b_arg.value} passed to {name}(); "
                    "thread B from the configured PDM geometry",
                )


class NodeIsolationRule(Rule):
    """REP005: unaccounted state access crossing the simulation boundary.

    ``inspect_block`` / ``to_array`` / private ``_blocks`` payload access
    read data without charging any disk and without a
    :meth:`~repro.cluster.network.Network.transfer` — in a real cluster
    that data does not exist on the reading node.  Inside ``core`` and
    ``extsort`` these are simulated races on node state.  Reading
    ``inspect_block(i).size`` only is allowed: block sizes are directory
    metadata, free in the model.  The runtime half of this rule (the
    sanitizer's dead-node and foreign-write checks) covers what syntax
    cannot see.
    """

    code = "REP005"
    name = "node-isolation"
    summary = "charge-free payload access crosses the node/accounting boundary"
    rationale = (
        "Payload read through inspect_block/to_array/_blocks is neither "
        "charged to a disk nor moved through the Network, so a node can "
        "observe data it could never hold — a simulated race."
    )
    fix_hint = (
        "Use read_block/BlockReader (charged) and Network.transfer for "
        "cross-node movement; .size-only metadata access is free and legal."
    )
    scope = ("core/", "extsort/")
    # obs/ is the observation plane: it reads event metadata only (never
    # payload) and sits outside the simulated node boundary by design.
    exempt = ("obs/",)

    _PRIVATE_STATE = {"_blocks", "_store_load", "_store_append", "_block_sizes"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _terminal_name(node.func)
                if name == "to_array":
                    yield ctx.finding(
                        self, node,
                        "to_array() reads the whole file charge-free; "
                        "algorithms must use charged block reads",
                    )
                elif name == "inspect_block" and not self._size_only(node, parents):
                    yield ctx.finding(
                        self, node,
                        "inspect_block() payload read is charge-free; only "
                        ".size metadata access is free in the model",
                    )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr in self._PRIVATE_STATE
                and not (isinstance(node.value, ast.Name) and node.value.id == "self")
            ):
                yield ctx.finding(
                    self, node,
                    f"private storage access .{node.attr} bypasses the "
                    "accounted BlockFile interface",
                )

    @staticmethod
    def _size_only(call: ast.Call, parents: dict[ast.AST, ast.AST]) -> bool:
        parent = parents.get(call)
        return isinstance(parent, ast.Attribute) and parent.attr == "size"


class MemoryBypassRule(Rule):
    """REP006: data-dependent allocation in a function that never touches
    a MemoryManager.

    Every buffer the engines hold in core must be pinned against the M
    budget.  A function that allocates arrays of *data-dependent* size
    but never references a memory manager (no ``mem`` parameter, no
    ``reserve``/``acquire``/``release`` call) has no way to be budgeted.
    Fixed-size literal allocations are ignored (they are O(1) scratch).
    """

    code = "REP006"
    name = "memory-bypass"
    summary = "data-sized allocation in a function with no MemoryManager"
    rationale = (
        "Buffers never pinned via MemoryManager.reserve can exceed the "
        "simulated M, making 'out-of-core' execution silently in-core."
    )
    fix_hint = (
        "Accept a MemoryManager and wrap the allocation's lifetime in "
        "mem.reserve(n); or bound the size and note it with a noqa reason."
    )
    scope = ("core/", "extsort/")

    _NP_ALLOCS = {"empty", "zeros", "ones", "full", "concatenate", "tile",
                  "repeat", "arange"}
    _MEM_MARKERS = {"reserve", "acquire", "release", "mem", "memory"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if self._touches_memory_manager(fn):
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                alloc = _module_attr(node.func, _NUMPY_NAMES)
                if alloc is None or alloc[1] not in self._NP_ALLOCS:
                    continue
                if node.args and isinstance(node.args[0], ast.Constant):
                    continue  # fixed-size scratch is O(1), not data-sized
                yield ctx.finding(
                    self, node,
                    f"np.{alloc[1]}() of data-dependent size in "
                    f"{fn.name}(), which never touches a MemoryManager",
                )

    @classmethod
    def _touches_memory_manager(cls, fn: ast.AST) -> bool:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = fn.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if args.vararg:
            all_args.append(args.vararg)
        if args.kwarg:
            all_args.append(args.kwarg)
        if any(a.arg in cls._MEM_MARKERS for a in all_args):
            return True
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and node.attr in cls._MEM_MARKERS:
                return True
            if isinstance(node, ast.Name) and node.id in cls._MEM_MARKERS:
                return True
        return False


class SwallowedFaultRule(Rule):
    """REP007: exception handling that defeats the fault-recovery layer.

    Bare ``except:``, broad ``except Exception:`` that neither re-raises
    nor uses the exception, and ``FaultError`` handlers that silently
    ``pass`` all absorb the very signals
    :class:`~repro.faults.recovery.StepRunner` needs to checkpoint,
    retry or degrade.  A swallowed fault turns injected failures into
    silent corruption.
    """

    code = "REP007"
    name = "swallowed-fault"
    summary = "bare/broad except or silently swallowed FaultError"
    rationale = (
        "The recovery layer routes every injected failure through "
        "FaultError subclasses; a handler that swallows them converts a "
        "recoverable fault into silent corruption."
    )
    fix_hint = (
        "Catch the narrowest exception that can actually occur, re-raise "
        "what you cannot handle, and never blanket-swallow FaultError."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self, node,
                    "bare except: swallows FaultError and kills recovery; "
                    "name the exceptions you can actually handle",
                )
                continue
            for exc_type in self._handler_types(node.type):
                tname = _terminal_name(exc_type)
                if tname in {"Exception", "BaseException"}:
                    if not self._handles_properly(node):
                        yield ctx.finding(
                            self, node,
                            f"except {tname} that neither re-raises nor uses "
                            "the exception swallows injected faults",
                        )
                elif tname.endswith("FaultError") or tname == "NodeKilledError":
                    if not self._handles_properly(node):
                        yield ctx.finding(
                            self, node,
                            f"{tname} swallowed without re-raise defeats "
                            "the recovery layer",
                        )

    @staticmethod
    def _handler_types(node: ast.expr) -> list[ast.expr]:
        if isinstance(node, ast.Tuple):
            return list(node.elts)
        return [node]

    @staticmethod
    def _handles_properly(handler: ast.ExceptHandler) -> bool:
        """True if the handler re-raises or meaningfully uses the exception."""
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
        return False


class SharedMutableStateRule(Rule):
    """REP008: mutable default arguments and module-level mutable state.

    The simulation runs p nodes inside one process; any module-level
    mutable object or mutable default argument is *shared across every
    simulated node*, the in-process analogue of a data race.  ALL_CAPS
    names are treated as declared constant registries and skipped;
    intentional process-global state (e.g. the sanitizer stack) carries
    a noqa reason.
    """

    code = "REP008"
    name = "shared-mutable-state"
    summary = "mutable default arg or module-level mutable state"
    rationale = (
        "With p nodes simulated in one process, module-level mutables and "
        "mutable defaults are implicitly shared across nodes and across "
        "repeated runs — hidden cross-node channels and replay hazards."
    )
    fix_hint = (
        "Use None defaults materialised inside the function; hold per-node "
        "state on SimNode; declare genuine constants in ALL_CAPS."
    )
    # obs/ deliberately aggregates cross-node state: the per-cluster
    # telemetry bus is the one sanctioned shared observer.
    exempt = ("obs/",)

    _MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict",
                      "Counter", "deque"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                args = node.args
                for default in [*args.defaults, *args.kw_defaults]:
                    if default is not None and self._is_mutable(default):
                        yield ctx.finding(
                            self, default,
                            "mutable default argument is shared across every "
                            "call and every simulated node",
                        )
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not self._is_mutable(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.isupper() or (name.startswith("__") and name.endswith("__")):
                    continue  # declared constant registry / dunder
                yield ctx.finding(
                    self, stmt,
                    f"module-level mutable {name!r} is shared across all "
                    "simulated nodes and runs",
                )

    @classmethod
    def _is_mutable(cls, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _terminal_name(node.func) in cls._MUTABLE_CALLS
        return False


#: All rules, in code order.  This is the registry the CLI and tests use.
ALL_RULES: tuple[Rule, ...] = (
    RawHostIORule(),
    InCoreSortRule(),
    NondeterminismRule(),
    MagicBlockSizeRule(),
    NodeIsolationRule(),
    MemoryBypassRule(),
    SwallowedFaultRule(),
    SharedMutableStateRule(),
)

RULES_BY_CODE: dict[str, Rule] = {r.code: r for r in ALL_RULES}


def get_rules(codes: Sequence[str] | None = None) -> tuple[Rule, ...]:
    """Resolve ``--rule`` selections to rule instances."""
    if not codes:
        return ALL_RULES
    out = []
    for code in codes:
        rule = RULES_BY_CODE.get(code.upper())
        if rule is None:
            raise AnalysisError(
                f"unknown rule {code!r}; have {', '.join(sorted(RULES_BY_CODE))}"
            )
        out.append(rule)
    return tuple(out)
