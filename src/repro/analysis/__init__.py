"""Static analysis + runtime sanitizers guarding the simulation invariants.

Two complementary halves (see ``docs/ANALYSIS.md``):

* the **linter** (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.rules`, CLI ``python -m repro lint``) — an
  AST pass codifying rules REP001..REP008 over ``src/repro``;
* the **sanitizers** (:mod:`repro.analysis.sanitizers`) — opt-in
  dynamic cross-checks the accounting surfaces (SimDisk,
  MemoryManager, Network, BlockFile) consult when installed.
"""

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.engine import (
    AnalysisError,
    AnalysisReport,
    FileReport,
    Finding,
    ModuleContext,
    Rule,
    Suppression,
    analyze_file,
    analyze_paths,
    analyze_source,
    package_relpath,
    parse_noqa,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE, get_rules
from repro.analysis.sanitizers import (
    RuntimeSanitizer,
    SanitizerConfig,
    SanitizerError,
    SanitizerStats,
    active_sanitizer,
    install_sanitizers,
    sanitized,
    uninstall_sanitizers,
)

__all__ = [
    "ALL_RULES",
    "AnalysisError",
    "AnalysisReport",
    "Baseline",
    "FileReport",
    "Finding",
    "ModuleContext",
    "Rule",
    "RULES_BY_CODE",
    "RuntimeSanitizer",
    "SanitizerConfig",
    "SanitizerError",
    "SanitizerStats",
    "Suppression",
    "active_sanitizer",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "fingerprint",
    "get_rules",
    "install_sanitizers",
    "package_relpath",
    "parse_noqa",
    "sanitized",
    "uninstall_sanitizers",
]
