"""Baseline file: grandfathered findings that CI tolerates.

The baseline lets the lint gate fail only on *new* violations: findings
already present when the gate was introduced are fingerprinted and
checked in (``lint-baseline.json`` at the repository root), and CI fails
the moment a finding appears whose fingerprint is not in (or exceeds its
count in) the baseline.

Fingerprints are ``sha1(path | rule | stripped-source-line)`` — stable
across line-number drift (unrelated edits above a finding do not break
the match) but invalidated the moment the flagged line itself changes,
which forces a human re-decision.  Duplicate identical lines in one file
are handled with multiset counts.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path

from repro.analysis.engine import AnalysisError, Finding, package_relpath

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding, independent of its line number."""
    key = f"{package_relpath(finding.path)}|{finding.rule}|{finding.snippet}"
    return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, counts: Counter[str] | None = None) -> None:
        self.counts: Counter[str] = counts if counts is not None else Counter()

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        p = Path(path)
        try:
            data = json.loads(p.read_text(encoding="utf-8"))
        except OSError as exc:
            raise AnalysisError(f"{p}: cannot read baseline: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"{p}: invalid baseline JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise AnalysisError(
                f"{p}: unsupported baseline (want version {BASELINE_VERSION})"
            )
        counts: Counter[str] = Counter()
        for entry in data.get("entries", []):
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise AnalysisError(f"{p}: malformed baseline entry: {entry!r}")
            counts[str(entry["fingerprint"])] += int(entry.get("count", 1))
        return cls(counts)

    @staticmethod
    def write(path: str | Path, findings: list[Finding]) -> None:
        """Serialise ``findings`` as the new baseline (stable ordering)."""
        grouped: dict[str, dict[str, object]] = {}
        for f in sorted(findings):
            fp = fingerprint(f)
            if fp in grouped:
                grouped[fp]["count"] = int(grouped[fp]["count"]) + 1  # type: ignore[arg-type]
            else:
                grouped[fp] = {
                    "fingerprint": fp,
                    "rule": f.rule,
                    "path": package_relpath(f.path),
                    "snippet": f.snippet,
                    "count": 1,
                }
        payload = {
            "version": BASELINE_VERSION,
            "entries": sorted(
                grouped.values(),
                key=lambda e: (str(e["path"]), str(e["rule"]), str(e["fingerprint"])),
            ),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition ``findings`` into (new, baselined).

        For each fingerprint, up to its baseline count of occurrences
        (in source order) is tolerated; every occurrence beyond that is
        new.
        """
        seen: Counter[str] = Counter()
        new: list[Finding] = []
        old: list[Finding] = []
        for f in sorted(findings):
            fp = fingerprint(f)
            seen[fp] += 1
            if seen[fp] <= self.counts.get(fp, 0):
                old.append(f)
            else:
                new.append(f)
        return new, old
