"""repro — Out-of-core PSRS sorting for clusters with processors at
different speed.

A full reproduction of C. Cérin, *"An Out-of-Core Sorting Algorithm for
Clusters with Processors at Different Speed"* (IPPS 2002): the
heterogeneity-aware external PSRS algorithm, every substrate it depends
on (the Parallel Disk Model, polyphase merge sort, a deterministic
simulated heterogeneous cluster with Fast-Ethernet/Myrinet cost models),
the baselines it compares against, and the benches that regenerate the
paper's tables.

Quickstart
----------
>>> import numpy as np
>>> from repro import (Cluster, PerfVector, PSRSConfig, heterogeneous_cluster,
...                    sort_array)
>>> perf = PerfVector([1, 1, 4, 4])
>>> cluster = Cluster(heterogeneous_cluster(perf.values, memory_items=65536))
>>> data = np.random.default_rng(0).integers(
...     0, 2**32, perf.nearest_admissible(100_000), dtype=np.uint32)
>>> result = sort_array(cluster, perf, data, PSRSConfig(block_items=1024))
>>> bool(np.all(np.diff(result.to_array().astype(np.int64)) >= 0))
True
"""

from repro.cluster import (
    Cluster,
    ClusterSpec,
    CpuParams,
    FAST_ETHERNET,
    LinkModel,
    MYRINET,
    Network,
    NodeSpec,
    SimComm,
    SimNode,
    heterogeneous_cluster,
    homogeneous_cluster,
    paper_cluster,
)
from repro.core import (
    CalibrationResult,
    DeWittConfig,
    DeWittResult,
    sort_array_dewitt,
    HyperquicksortResult,
    exact_quantile_pivots,
    sort_array_hyperquicksort,
    InCorePSRSResult,
    OverpartitionResult,
    PSRSConfig,
    PSRSResult,
    PerfVector,
    calibrate,
    gather_output,
    sequential_sort_table,
    sort_array,
    sort_array_in_core,
    sort_array_overpartitioned,
    sort_distributed,
    sort_in_core,
    sort_overpartitioned,
)
from repro.extsort import balanced_merge_sort, distribution_sort, polyphase_sort
from repro.faults import (
    DiskFault,
    DiskFaultError,
    FaultCounters,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    MessageFault,
    NetworkFaultError,
    NodeKill,
    NodeKilledError,
    RetryPolicy,
)
from repro.metrics import (
    PartitionStats,
    Table,
    TrialStats,
    fault_table,
    partition_stats,
    repeat_trials,
)
from repro.pdm import (
    BlockFile,
    BlockReader,
    BlockWriter,
    DiskBackedBlockFile,
    DiskParams,
    FileStore,
    IOStats,
    MemoryBudgetError,
    MemoryManager,
    PDMConfig,
    SimDisk,
    StripedFile,
)
from repro.workloads import (
    BENCHMARKS,
    generate,
    make_benchmark,
    pack_records,
    unpack_records,
    verify_sorted_permutation,
)

__version__ = "1.0.0"

__all__ = [
    "BENCHMARKS",
    "BlockFile",
    "BlockReader",
    "BlockWriter",
    "CalibrationResult",
    "Cluster",
    "DeWittConfig",
    "DeWittResult",
    "sort_array_dewitt",
    "HyperquicksortResult",
    "exact_quantile_pivots",
    "sort_array_hyperquicksort",
    "ClusterSpec",
    "CpuParams",
    "DiskBackedBlockFile",
    "DiskFault",
    "DiskFaultError",
    "DiskParams",
    "FAST_ETHERNET",
    "FaultCounters",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "MessageFault",
    "NetworkFaultError",
    "NodeKill",
    "NodeKilledError",
    "RetryPolicy",
    "fault_table",
    "FileStore",
    "IOStats",
    "InCorePSRSResult",
    "LinkModel",
    "MYRINET",
    "MemoryBudgetError",
    "MemoryManager",
    "Network",
    "NodeSpec",
    "OverpartitionResult",
    "PDMConfig",
    "PSRSConfig",
    "PSRSResult",
    "PartitionStats",
    "PerfVector",
    "SimComm",
    "SimDisk",
    "SimNode",
    "StripedFile",
    "Table",
    "TrialStats",
    "balanced_merge_sort",
    "calibrate",
    "distribution_sort",
    "gather_output",
    "generate",
    "heterogeneous_cluster",
    "homogeneous_cluster",
    "make_benchmark",
    "pack_records",
    "paper_cluster",
    "partition_stats",
    "polyphase_sort",
    "repeat_trials",
    "sequential_sort_table",
    "sort_array",
    "sort_array_in_core",
    "sort_array_overpartitioned",
    "sort_distributed",
    "sort_in_core",
    "sort_overpartitioned",
    "unpack_records",
    "verify_sorted_permutation",
    "__version__",
]
