#!/usr/bin/env python3
"""Comparing the sequential external-sorting engines on the 8 benchmarks.

Exercises the substrate directly: polyphase merge sort (the paper's
engine), balanced k-way merging, and distribution sort, with both run
formation policies, over the workload suite — reporting item I/Os (the
PDM's cost measure) for each combination.

Run:  python examples/engine_comparison.py
"""

from repro import (
    BENCHMARKS,
    BlockFile,
    BlockWriter,
    DiskParams,
    MemoryManager,
    SimDisk,
    Table,
    balanced_merge_sort,
    distribution_sort,
    make_benchmark,
    polyphase_sort,
    verify_sorted_permutation,
)

N = 2**14
MEMORY = 2048
BLOCK = 256


def fresh_input(bench_id: int):
    disk = SimDisk(DiskParams(seek_time=5e-4, bandwidth=15e6))
    mem = MemoryManager(MEMORY)
    data = make_benchmark(bench_id, N, seed=bench_id)
    f = BlockFile(disk, BLOCK, data.dtype)
    with BlockWriter(f, mem) as w:
        w.write(data)
    return disk, mem, f, data, disk.stats.snapshot()


ENGINES = {
    "polyphase": lambda f, d, m: polyphase_sort(f, d, m, n_tapes=8).output,
    "polyphase+replacement": lambda f, d, m: polyphase_sort(
        f, d, m, n_tapes=8, run_policy="replacement"
    ).output,
    "balanced": lambda f, d, m: balanced_merge_sort(f, d, m).output,
    "distribution": lambda f, d, m: distribution_sort(f, d, m).output,
}


def main() -> None:
    table = Table(
        f"sequential engines x workloads: item I/Os (N={N}, M={MEMORY}, B={BLOCK})",
        ["workload"] + list(ENGINES),
    )
    for bench_id, spec in BENCHMARKS.items():
        row = [spec.name]
        for engine_fn in ENGINES.values():
            disk, mem, f, data, base = fresh_input(bench_id)
            out = engine_fn(f, disk, mem)
            verify_sorted_permutation(data, out.to_array())
            row.append((disk.stats - base).item_ios)
        table.add_row(*row)
    print(table.render())
    print(
        "\nNotes: replacement selection shines on presorted inputs (one "
        "run, no merge); distribution sort struggles when duplicates "
        "defeat its splitters (all_equal short-circuits via the "
        "constant-bucket path)."
    )


if __name__ == "__main__":
    main()
