#!/usr/bin/env python3
"""The paper's full workflow on the Table-1 cluster.

1. Calibrate: run the sequential external sort on every node and fill
   the perf array from the time ratios (Table 2's protocol).
2. Sort with the calibrated vector and with the naive homogeneous one.
3. Report the Table-3 comparison.

Run:  python examples/calibrate_and_sort.py
"""

from repro import (
    Cluster,
    PerfVector,
    PSRSConfig,
    Table,
    calibrate,
    make_benchmark,
    paper_cluster,
    sort_array,
    verify_sorted_permutation,
)

MEMORY = 2048
BLOCK = 256
N = 2**16


def main() -> None:
    spec = paper_cluster(memory_items=MEMORY)

    # --- 1. calibration ----------------------------------------------------
    cal = calibrate(spec, 4 * N // 4, block_items=BLOCK)
    print("calibration (each node sorts N/p alone):")
    for node_spec, t in zip(spec.nodes, cal.times):
        print(f"  {node_spec.name:<12} {t:8.2f} s")
    print(f"-> perf vector: {cal.perf.values}\n")

    # --- 2. parallel sorts ---------------------------------------------------
    table = Table("calibrated vs naive configuration",
                  ["perf", "Exe Time (s)", "S(max)"])
    times = {}
    for label, perf in [("calibrated", cal.perf), ("naive", PerfVector([1, 1, 1, 1]))]:
        n = perf.nearest_exact(N)
        data = make_benchmark(0, n, seed=0)
        cluster = Cluster(spec)
        res = sort_array(
            cluster, perf, data, PSRSConfig(block_items=BLOCK, message_items=8192)
        )
        verify_sorted_permutation(data, res.to_array())
        times[label] = res.elapsed
        table.add_row(str(perf.values), res.elapsed, res.s_max)

    # --- 3. report -----------------------------------------------------------
    print(table.render())
    print(
        f"\nknowing the machine is heterogeneous bought "
        f"{times['naive'] / times['calibrated']:.2f}x "
        f"(paper Table 3: 1.96x)"
    )


if __name__ == "__main__":
    main()
