#!/usr/bin/env python3
"""Tuning the redistribution message size (the paper's §5 experiment).

The paper found 8-integer messages catastrophic over Fast-Ethernet
(slower than sorting sequentially!) and 8K-integer messages best.  This
example sweeps the knob on both interconnects and shows why Myrinet
doesn't care: its user-level messaging has no small-send cliff.

Run:  python examples/message_size_tuning.py
"""

from repro import (
    Cluster,
    FAST_ETHERNET,
    MYRINET,
    PerfVector,
    PSRSConfig,
    Table,
    make_benchmark,
    paper_cluster,
    sort_array,
)

MEMORY = 2048
BLOCK = 256
N = 2**15
SIZES = [8, 64, 512, 4096, 8192, 32768]


def main() -> None:
    perf = PerfVector([1, 1, 1, 1])
    data = make_benchmark(0, N, seed=0)

    table = Table(
        f"message-size sweep, homogeneous 4 nodes, N={N}",
        ["message (ints)", "Fast-Ethernet (s)", "Myrinet (s)"],
    )
    best = {}
    for msg in SIZES:
        row = [msg]
        for link in (FAST_ETHERNET, MYRINET):
            cluster = Cluster(paper_cluster(loaded=False, memory_items=MEMORY, link=link))
            res = sort_array(
                cluster,
                perf,
                data,
                PSRSConfig(block_items=BLOCK, message_items=msg),
            )
            row.append(res.elapsed)
            best.setdefault(link.name, []).append((res.elapsed, msg))
        table.add_row(*row)

    print(table.render())
    for name, runs in best.items():
        t, msg = min(runs)
        print(f"best on {name}: {msg} integers ({t:.3f} s)")
    print(
        "\nThe Fast-Ethernet cliff below ~MTU-sized messages is the "
        "paper's 133.6 s disaster; Myrinet is flat."
    )


if __name__ == "__main__":
    main()
