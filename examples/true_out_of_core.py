#!/usr/bin/env python3
"""Genuinely out-of-core: every intermediate file spills to host storage.

The library defaults to in-process block storage (fast for tests); this
example installs a :class:`repro.FileStore` on every node's disk so run
files, polyphase tapes, partitions and outputs all live as real files in
a spill directory — the process' resident data stays bounded by the
simulated memory budgets while the dataset can exceed RAM.

Run:  python examples/true_out_of_core.py
"""

import numpy as np

from repro import (
    Cluster,
    FileStore,
    PerfVector,
    PSRSConfig,
    heterogeneous_cluster,
    sort_array,
    verify_sorted_permutation,
)


def main() -> None:
    perf = PerfVector([4, 4, 1, 1])
    n = perf.nearest_exact(200_000)
    data = np.random.default_rng(7).integers(0, 2**32, n, dtype=np.uint32)

    cluster = Cluster(
        heterogeneous_cluster([4.0, 4.0, 1.0, 1.0], memory_items=4096)
    )

    with FileStore() as store:
        for node in cluster.nodes:
            node.disk.file_factory = store.create

        result = sort_array(
            cluster, perf, data, PSRSConfig(block_items=512, message_items=8192)
        )
        verify_sorted_permutation(data, result.to_array())

        print(f"sorted {result.n_items} integers, S(max)={result.s_max:.4f}")
        print(f"simulated time: {result.elapsed:.2f} s")
        print(f"spill directory: {store.directory}")
        print(f"  files created: {store.files_created}")
        print(f"  bytes currently on host disk: {store.bytes_on_disk():,}")
        print(
            f"  (input was {data.nbytes:,} bytes; intermediates are "
            f"reclaimed as the phases consume them)"
        )
    print("spill directory removed on exit")


if __name__ == "__main__":
    main()
