#!/usr/bin/env python3
"""Quickstart: sort 100k integers out-of-core on a simulated 4-node
heterogeneous cluster.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Cluster,
    PerfVector,
    PSRSConfig,
    heterogeneous_cluster,
    sort_array,
    verify_sorted_permutation,
)

def main() -> None:
    # Two nodes 4x faster than the other two — the paper's machine class.
    perf = PerfVector([4, 4, 1, 1])

    # Each node: 8192 items of RAM (so the sort is genuinely out of core),
    # one simulated disk, speed factors matching the perf vector.
    cluster = Cluster(
        heterogeneous_cluster([float(v) for v in perf.values], memory_items=8192)
    )

    # An input size with integral performance-proportional portions.
    n = perf.nearest_exact(100_000)
    data = np.random.default_rng(0).integers(0, 2**32, n, dtype=np.uint32)

    result = sort_array(
        cluster,
        perf,
        data,
        PSRSConfig(block_items=1024, message_items=8192),
    )

    # The output is a real sorted permutation of the input, checked here.
    verify_sorted_permutation(data, result.to_array())

    print(f"sorted {result.n_items} integers on {cluster!r}")
    print(f"simulated time: {result.elapsed:.2f} s")
    print(f"load balance S(max): {result.s_max:.4f} (1.0 = perfect)")
    print("per-step simulated time:")
    for step, t in result.step_times.items():
        print(f"  {step:<18} {t:8.3f} s")
    print(
        f"I/O: {result.io.blocks_read} blocks read, "
        f"{result.io.blocks_written} blocks written; "
        f"network: {result.network_messages} messages, "
        f"{result.network_bytes / 1e6:.2f} MB"
    )


if __name__ == "__main__":
    main()
