#!/usr/bin/env python3
"""The paper's motivating scenario: a cluster of mixed hardware generations.

§1: the machine class serves "those who cannot replace instantaneously
whole the components of its cluster with a new processor or disk
generation but shall compose with old and new processors or disks".
The paper's own Eq.-2 worked example uses perf = {8,5,3,1}:
lcm = 120, so with k = 1 the admissible size is
n = 120 + 3*120 + 5*120 + 8*120 = 2040.

This example walks that arithmetic, then sorts at a larger admissible
size on a four-generation cluster — including a newer node that also has
two disks (the PDM's D dimension) — and shows the per-node shares,
expansion, and what ignoring the heterogeneity would cost.

Run:  python examples/mixed_generation_cluster.py
"""

from repro import (
    Cluster,
    ClusterSpec,
    CpuParams,
    DiskParams,
    NodeSpec,
    PerfVector,
    PSRSConfig,
    Table,
    make_benchmark,
    sort_array,
    verify_sorted_permutation,
)


def main() -> None:
    perf = PerfVector([8, 5, 3, 1])

    # --- the paper's Eq.-2 arithmetic ---------------------------------------
    print("Eq. 2 worked example (paper §4):")
    print(f"  perf = {perf.values}, lcm = {perf.lcm}, sum = {perf.total}")
    print(f"  k=1 admissible size: n = {perf.admissible_size(1)} (paper: 2040)")
    n = perf.nearest_admissible(50_000)
    print(f"  smallest admissible size >= 50000: {n}")
    print(f"  portions l_i = {perf.exact_portions(n)}\n")

    # --- a four-generation machine -------------------------------------------
    # Old boxes: slow CPU, one slow disk.  New boxes: fast CPU, faster
    # disk — the newest with a two-disk stripe.
    gen = lambda name, speed, disk, n_disks=1: NodeSpec(  # noqa: E731
        name=name,
        speed=speed,
        memory_items=2048,
        disk=disk,
        cpu=CpuParams(seconds_per_op=2e-8),
        n_disks=n_disks,
    )
    spec = ClusterSpec(
        nodes=(
            gen("gen2024", 8.0, DiskParams(seek_time=2e-4, bandwidth=60e6), n_disks=2),
            gen("gen2018", 5.0, DiskParams(seek_time=3e-4, bandwidth=40e6)),
            gen("gen2012", 3.0, DiskParams(seek_time=4e-4, bandwidth=25e6)),
            gen("gen2006", 1.0, DiskParams(seek_time=5e-4, bandwidth=15e6)),
        )
    )

    data = make_benchmark(0, n, seed=11)
    table = Table("mixed-generation cluster", ["perf", "Exe Time (s)", "S(max)"])
    times = {}
    for label, vec in [("aware", perf), ("naive", PerfVector([1, 1, 1, 1]))]:
        cluster = Cluster(spec)
        res = sort_array(
            cluster, vec, data, PSRSConfig(block_items=256, message_items=8192)
        )
        verify_sorted_permutation(data, res.to_array())
        times[label] = res.elapsed
        table.add_row(str(vec.values), res.elapsed, res.s_max)
    print(table.render())
    print(
        f"\nrespecting the hardware generations bought "
        f"{times['naive'] / times['aware']:.2f}x"
    )


if __name__ == "__main__":
    main()
