#!/usr/bin/env python3
"""Sorting records, not just keys: a log-merge scenario.

A fleet of services emits fixed-size log entries; we want them globally
ordered by timestamp on a heterogeneous 4-node cluster, without ever
holding the log in one node's RAM.  Keys (timestamps) ride the sorting
pipeline packed with a 32-bit payload locator (see
``repro.pack_records``); payloads stay put and are permuted by locator
afterwards — the classic key-pointer external sort.

Run:  python examples/log_sorting_records.py
"""

import numpy as np

from repro import (
    Cluster,
    PerfVector,
    PSRSConfig,
    heterogeneous_cluster,
    pack_records,
    sort_array,
    unpack_records,
)

N_ENTRIES = 60_000
SERVICES = [b"auth", b"cart", b"search", b"billing"]


def synthesize_log(n: int, rng: np.random.Generator):
    """Timestamps (seconds, loosely increasing with heavy interleaving)
    plus a payload table of (service, status) per entry."""
    base = rng.integers(0, 1000, size=n, dtype=np.uint32).cumsum() // 16
    jitter = rng.integers(0, 5000, size=n, dtype=np.uint32)
    timestamps = (base + jitter).astype(np.uint32)
    payload = np.zeros(
        n, dtype=[("service", "S8"), ("status", np.uint16), ("latency_ms", np.uint16)]
    )
    payload["service"] = rng.choice(SERVICES, size=n)
    payload["status"] = rng.choice([200, 200, 200, 404, 500], size=n)
    payload["latency_ms"] = rng.integers(1, 2000, size=n)
    return timestamps, payload


def main() -> None:
    rng = np.random.default_rng(2026)
    perf = PerfVector([4, 4, 1, 1])
    n = perf.nearest_exact(N_ENTRIES)
    timestamps, payload = synthesize_log(n, rng)

    # Pack (timestamp, locator) into sortable 64-bit keys.
    packed = pack_records(timestamps, np.arange(n, dtype=np.uint32))

    cluster = Cluster(
        heterogeneous_cluster([4.0, 4.0, 1.0, 1.0], memory_items=4096)
    )
    result = sort_array(
        cluster, perf, packed, PSRSConfig(block_items=512, message_items=8192)
    )

    sorted_ts, locators = unpack_records(result.to_array())
    ordered_payload = payload[locators]

    assert np.all(np.diff(sorted_ts.astype(np.int64)) >= 0)
    assert np.array_equal(np.sort(locators), np.arange(n, dtype=np.uint32))

    print(f"globally ordered {n} log entries on {cluster!r}")
    print(f"simulated time {result.elapsed:.2f} s, S(max) {result.s_max:.4f}\n")
    print("first entries of the merged log:")
    for i in range(5):
        e = ordered_payload[i]
        print(
            f"  t={sorted_ts[i]:>8}  {e['service'].decode():<8} "
            f"status={e['status']}  {e['latency_ms']} ms"
        )
    errors = ordered_payload["status"] >= 500
    first_err = int(np.argmax(errors)) if errors.any() else -1
    print(
        f"\nfirst 5xx in global order at position {first_err} "
        f"(t={sorted_ts[first_err]}) — the query the merge exists for"
    )


if __name__ == "__main__":
    main()
