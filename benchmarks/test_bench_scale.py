"""Size x node-count scale matrix for the event kernel.

Sweeps N in {131k, 1M, 10M} items against p in {4, 16, 64} nodes (the
paper's {1,1,4,4} perf pattern tiled to width) through the real CLI,
folding every run into ``BENCH_sort.json`` keyed by ``{n}x{perf}``.

Two jobs at once:

* **trajectory** — the artifact accumulates a size x p picture of the
  event kernel's simulated times, including a 10M-item / 64-node run
  far beyond the paper's 4-node testbed;
* **regression guard** — each entry carries a ``best_elapsed_seconds``
  high-water mark; a run that comes in more than 20% over its key's
  best fails the bench, so simulated-time regressions on the pinned
  headline configuration cannot land silently.

Only the small combinations run by default (CI time).  Set
``REPRO_BENCH_SCALE=full`` — as the nightly workflow does — to run the
whole matrix; the multi-minute 10M rows skip the auditor (its event
buffering, not the sort, dominates at that size) but still verify the
output is a sorted permutation.
"""

import io
import json
import os
from contextlib import redirect_stdout
from itertools import cycle, islice

import pytest
from helpers import BLOCK_ITEMS, MEMORY_ITEMS, MESSAGE_ITEMS, record_with_guard

from repro.cli import main
from repro.metrics.bench import SCHEMA, get_run, load_bench, run_key

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_sort.json")
HEADLINE_KEY = "131080x1-1-4-4"

SIZES = {"131k": 131072, "1M": 1 << 20, "10M": 10 * (1 << 20)}
NODE_COUNTS = (4, 16, 64)
# Default (per-PR CI) combinations; the rest need REPRO_BENCH_SCALE=full.
LIGHT = {("131k", 4), ("131k", 16), ("1M", 4)}
FULL = os.environ.get("REPRO_BENCH_SCALE", "") == "full"

MATRIX = [(label, p) for label in SIZES for p in NODE_COUNTS]


def _perf_arg(p: int) -> str:
    """The paper's {1,1,4,4} heterogeneity pattern tiled to p nodes."""
    return ",".join(str(v) for v in islice(cycle((1, 1, 4, 4)), p))


def _run_cli(args: list[str]) -> dict:
    buf = io.StringIO()
    with redirect_stdout(buf):
        rc = main(args)
    assert rc == 0, buf.getvalue()
    return json.loads(buf.getvalue())


@pytest.mark.parametrize(
    "label,p", MATRIX, ids=[f"{label}-p{p}" for label, p in MATRIX]
)
def test_scale_matrix(label, p):
    if not FULL and (label, p) not in LIGHT:
        pytest.skip("heavy combination; nightly sets REPRO_BENCH_SCALE=full")
    n = SIZES[label]
    args = [
        "sort",
        "--n", str(n),
        "--perf", _perf_arg(p),
        "--memory", str(MEMORY_ITEMS),
        "--block", str(BLOCK_ITEMS),
        "--message", str(MESSAGE_ITEMS),
        "--kernel", "event",
        "--format", "json",
    ]
    if label == "131k" and p <= 16:
        # Cheap at this size; keeps the paper bounds enforced on the
        # trajectory.  Not at p=64: with ~2k items/node the step-5 bound's
        # 2*l_i+d slack is dwarfed by the p*B partial-block term, so the
        # formula (stated for the paper's 4-node regime) under-estimates.
        args.append("--audit")
    summary = _run_cli(args)
    assert summary["verified"] is True
    if "--audit" in args:
        assert summary["audit"]["ok"] is True
    doc = record_with_guard(BENCH_PATH, summary)
    assert doc["schema"] == SCHEMA
    entry = get_run(doc, run_key(summary))
    assert entry is not None
    assert entry["best_elapsed_seconds"] <= entry["elapsed_seconds"]


def test_headline_under_two_seconds():
    """Acceptance pin: the {1,1,4,4} 131k run simulates in under 2 s."""
    entry = get_run(load_bench(BENCH_PATH), HEADLINE_KEY)
    assert entry is not None, f"{HEADLINE_KEY} missing from BENCH_sort.json"
    assert entry["elapsed_seconds"] < 2.0


def test_ten_million_by_64_recorded():
    """Acceptance pin: a completed 10M-item, 64-node entry exists."""
    doc = load_bench(BENCH_PATH)
    key = next(
        (
            run_key(e)
            for e in doc["runs"]
            if e["n_items"] >= SIZES["10M"] and len(e["perf"]) == 64
        ),
        None,
    )
    assert key is not None, "no 10M x p=64 entry recorded in BENCH_sort.json"
    entry = get_run(doc, key)
    assert entry["verified"] is True
