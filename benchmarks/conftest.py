"""Benchmark-suite plumbing: importable helpers + results directory."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
os.makedirs(RESULTS_DIR, exist_ok=True)
