"""Scaling benches beyond the paper's 4-node testbed.

Two sweeps the paper's machine could not run but its model predicts:

1. **Heterogeneity factor**: speed ratio r in {1,2,4,8} between the fast
   and slow node pairs.  The theory module predicts that treating the
   cluster as homogeneous wastes ``total/(p*min)`` = (2+2r)/4x; measured
   slowdowns should track that curve (damped by constant offsets — the
   same damping between 2.5x and the paper's measured 1.96x at r=4).
2. **Node count**: p in {2,4,8,16} homogeneous nodes at fixed total N;
   the sort is embarrassingly I/O-parallel after the one redistribution,
   so time should shrink ~1/p until communication/sampling constants
   bite.
"""

import numpy as np
from helpers import BLOCK_ITEMS, MEMORY_ITEMS, MESSAGE_ITEMS, once, write_result

from repro.cluster.machine import Cluster, heterogeneous_cluster, homogeneous_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.core.theory import homogeneous_waste_factor
from repro.metrics.report import Table
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation

CFG = PSRSConfig(block_items=BLOCK_ITEMS, message_items=MESSAGE_ITEMS)


def run_heterogeneity_sweep():
    rows = []
    for r in (1, 2, 4, 8):
        true_perf = PerfVector([r, r, 1, 1])
        speeds = [float(r), float(r), 1.0, 1.0]
        n = true_perf.nearest_exact(2**15)
        data = make_benchmark(0, n, seed=3)
        times = {}
        for label, perf in (("aware", true_perf), ("naive", PerfVector([1] * 4))):
            cluster = Cluster(
                heterogeneous_cluster(speeds, memory_items=MEMORY_ITEMS),
                kernel="lockstep",  # BSP waste-factor claim
            )
            res = sort_array(cluster, perf, data[: perf.nearest_exact(2**15)], CFG)
            verify_sorted_permutation(data[: res.n_items], res.to_array())
            times[label] = res.elapsed
        predicted = homogeneous_waste_factor(true_perf)
        rows.append((r, times["aware"], times["naive"], times["naive"] / times["aware"], predicted))
    return rows


def run_node_count_sweep():
    rows = []
    n_total = 2**16
    for p in (1, 2, 4, 8, 16):
        perf = PerfVector([1] * p)
        n = perf.nearest_exact(n_total)
        data = make_benchmark(0, n, seed=4)
        cluster = Cluster(
            homogeneous_cluster(p, memory_items=MEMORY_ITEMS),
            kernel="lockstep",  # speedup-vs-p curve is a BSP-model claim
        )
        res = sort_array(cluster, perf, data, CFG)
        verify_sorted_permutation(data, res.to_array())
        rows.append((p, res.elapsed, res.s_max))
    return rows


def test_heterogeneity_factor_sweep(benchmark):
    rows = once(benchmark, run_heterogeneity_sweep)
    table = Table(
        "Heterogeneity sweep: speeds {r,r,1,1}, aware vs naive perf vector",
        ["r", "aware (s)", "naive (s)", "measured waste", "predicted total/(p*min)"],
    )
    for r, ta, tn, waste, pred in rows:
        table.add_row(r, ta, tn, f"{waste:.2f}x", f"{pred:.2f}x")
    write_result("scaling_heterogeneity", table.render())

    by = {r: waste for r, _, _, waste, _ in rows}
    # No heterogeneity -> no waste; waste grows monotonically with r and
    # stays below the undamped prediction.
    assert 0.95 < by[1] < 1.05
    assert by[2] < by[4] < by[8]
    for r, _, _, waste, pred in rows:
        assert waste < pred + 0.1


def test_node_count_sweep(benchmark):
    rows = once(benchmark, run_node_count_sweep)
    table = Table(
        "Node-count sweep: homogeneous p nodes, fixed total N=2^16",
        ["p", "Exe Time (s)", "S(max)", "speedup vs p=1"],
    )
    base = rows[0][1]
    for p, t, s in rows:
        table.add_row(p, t, s, f"{base / t:.2f}x")
    write_result("scaling_nodes", table.render())

    times = {p: t for p, t, _ in rows}
    # More nodes always help at these sizes, with decaying efficiency.
    assert times[2] < times[1]
    assert times[4] < times[2]
    assert times[8] < times[4]
    speedup8 = base / times[8]
    assert 3.0 < speedup8 <= 8.0  # sublinear but substantial
    # Balance holds at every width.
    assert all(s < 1.25 for _, _, s in rows)
