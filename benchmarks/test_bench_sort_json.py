"""Machine-readable headline benchmark: ``repro sort --format json``.

Runs the Table-3 headline configuration ({1,1,4,4}, Fast-Ethernet,
scaled N) through the real CLI and folds the JSON summary into
``BENCH_sort.json`` at the repository root — a keyed run list (one
entry per ``n_items x perf`` configuration, see
:mod:`repro.metrics.bench`) that other tooling can diff between commits
without parsing human-oriented tables, and that re-runs update instead
of clobbering.
"""

import io
import json
import os
from contextlib import redirect_stdout

from helpers import BLOCK_ITEMS, MEMORY_ITEMS, MESSAGE_ITEMS, N_TABLE3, once

from repro.cli import main
from repro.metrics.bench import SCHEMA, append_run, get_run, run_key, validate_bench

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ARGS = [
    "sort",
    "--n", str(N_TABLE3),
    "--perf", "1,1,4,4",
    "--memory", str(MEMORY_ITEMS),
    "--block", str(BLOCK_ITEMS),
    "--message", str(MESSAGE_ITEMS),
    "--audit",
    "--format", "json",
]


def test_bench_sort_json(benchmark):
    buf = io.StringIO()

    def run():
        with redirect_stdout(buf):
            rc = main(list(ARGS))
        return rc

    rc = once(benchmark, run)
    assert rc == 0
    summary = json.loads(buf.getvalue())
    assert summary["verified"] is True
    assert summary["audit"]["ok"] is True
    assert summary["s_max"] < 1.5
    path = os.path.join(REPO_ROOT, "BENCH_sort.json")
    doc = append_run(path, summary)
    # the artifact stays a valid keyed run list with this run folded in
    assert doc["schema"] == SCHEMA
    validate_bench(doc, path=path)
    entry = get_run(doc, run_key(summary))
    assert entry is not None and entry["verified"] is True
