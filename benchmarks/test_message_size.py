"""Regenerates the paper's §5 in-text message-size experiment.

Paper (homogeneous config, N = 2^21, Fast-Ethernet): with 8-integer
packets the parallel sort takes 133.61 s — *worse than sorting
sequentially*; with 8K-integer messages it takes 32.6 s; "It seems that
8K gives the best time performance."

Expected shape: a steep cliff at tiny message sizes (per-message latency
dominated), a flat optimum around 8K integers, and the tiny-message
parallel run losing to the fastest sequential node.
"""

from helpers import BLOCK_ITEMS, MEMORY_ITEMS, N_TAPES, SCALE, once, write_result

from repro.cluster.machine import Cluster, paper_cluster
from repro.core.calibration import calibrate
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.metrics.report import Table
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation

N = 2**21 // SCALE  # the paper's 2 M integers, scaled
MESSAGE_SIZES = [8, 64, 512, 2048, 8192, 32768]


def run_sweep():
    perf = PerfVector([1, 1, 1, 1])
    data = make_benchmark(0, N, seed=0)
    times = {}
    for msg in MESSAGE_SIZES:
        # Lockstep: the paper's sweep measured synchronous rounds; the
        # event kernel overlaps sends with merging and flattens the cliff.
        cluster = Cluster(
            paper_cluster(loaded=False, memory_items=MEMORY_ITEMS),
            kernel="lockstep",
        )
        res = sort_array(
            cluster,
            perf,
            data,
            PSRSConfig(block_items=BLOCK_ITEMS, message_items=msg, n_tapes=N_TAPES),
        )
        verify_sorted_permutation(data, res.to_array())
        times[msg] = res
    cal = calibrate(
        paper_cluster(loaded=False, memory_items=MEMORY_ITEMS),
        4 * N,
        block_items=BLOCK_ITEMS,
        n_tapes=N_TAPES,
        kernel="lockstep",  # same kernel as the sweep it is compared to
    )
    return times, cal.times[0]


def test_message_size_sweep(benchmark):
    times, t_seq = once(benchmark, run_sweep)

    table = Table(
        f"In-text experiment (scaled 1/{SCALE}): message-size sweep, "
        f"homogeneous, N={N}",
        ["Message (ints)", "Exe Time (s)", "Redistribute (s)", "vs sequential"],
    )
    for msg, res in times.items():
        table.add_row(
            msg,
            res.elapsed,
            res.step_times["4:redistribute"],
            f"{res.elapsed / t_seq:.2f}x",
        )
    best = min(times, key=lambda m: times[m].elapsed)
    summary = (
        f"\nSequential (one unloaded node, same engine): {t_seq:.2f} s\n"
        f"Best message size: {best} integers "
        f"(paper: 8K integers; 8-int messages lost to sequential)"
    )
    write_result("message_size", table.render() + summary)

    # Shape assertions.
    t8 = times[8].elapsed
    t8k = times[8192].elapsed
    assert t8 > 3 * t8k  # paper: 133.6 vs 32.6 = 4.1x
    assert t8 > t_seq  # tiny packets lose to the sequential sort
    assert t8k < t_seq  # good packets win
    # Flat optimum once messages exceed the small-send threshold: anything
    # from 512 ints up performs within a few percent of the paper's 8K.
    assert times[best].elapsed > 0.95 * t8k
    # Monotone improvement up to the optimum region.
    assert times[8].elapsed > times[64].elapsed > times[512].elapsed