"""Ablation (paper §3.1 vs §3.3): regular sampling vs overpartitioning.

Li & Sevcik report sublist expansions around 1.3 even at high s; the
paper cites PSRS's "a few percent, below two percent" as the reason to
build on regular sampling.  This bench measures S(max) for:

* heterogeneous regular sampling at several oversample factors
  (c=1 is the paper's literal count),
* the random-sample pivot variant,
* overpartitioning at several s.
"""

import numpy as np
from helpers import once, write_result

from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.core.in_core_psrs import sort_array_in_core
from repro.core.overpartition import sort_array_overpartitioned
from repro.core.perf import PerfVector
from repro.metrics.report import Table
from repro.workloads.generators import make_benchmark

PERF = PerfVector([1, 1, 4, 4])
N = PERF.nearest_exact(2**17)
TRIALS = 5


def _cluster():
    return Cluster(heterogeneous_cluster([float(v) for v in PERF.values]))


def run_ablation():
    rows = []
    for c in (1, 2, 4, 8):
        smax = [
            sort_array_in_core(
                _cluster(), PERF, make_benchmark(0, N, seed=s), oversample=c
            ).s_max
            for s in range(TRIALS)
        ]
        rows.append((f"regular sampling, c={c}", float(np.mean(smax)), float(np.max(smax))))
    for s_factor in (1, 2, 4, 16):
        smax = [
            sort_array_overpartitioned(
                _cluster(), PERF, make_benchmark(0, N, seed=s), s=s_factor, seed=s
            ).s_max
            for s in range(TRIALS)
        ]
        rows.append(
            (f"overpartitioning, s={s_factor}", float(np.mean(smax)), float(np.max(smax)))
        )
    # Extensions: exact quantiles (§3.2) and hyperquicksort (§6 future work).
    from repro.cluster.machine import Cluster as _C, heterogeneous_cluster as _h
    from repro.core.external_psrs import PSRSConfig, sort_array
    from repro.core.hyperquicksort import sort_array_hyperquicksort

    smax = []
    for s in range(TRIALS):
        cluster = _C(_h([float(v) for v in PERF.values], memory_items=2048))
        res = sort_array(
            cluster,
            PERF,
            make_benchmark(0, PERF.nearest_exact(2**15), seed=s),
            PSRSConfig(block_items=256, message_items=2048, pivot_method="quantile"),
        )
        smax.append(res.s_max)
    rows.append(("exact quantiles (§3.2)", float(np.mean(smax)), float(np.max(smax))))

    smax = [
        sort_array_hyperquicksort(
            _cluster(), PERF, make_benchmark(0, N, seed=s), seed=s
        ).s_max
        for s in range(TRIALS)
    ]
    rows.append(("hyperquicksort (§6)", float(np.mean(smax)), float(np.max(smax))))
    return rows


def test_sampling_vs_overpartitioning(benchmark):
    rows = once(benchmark, run_ablation)

    table = Table(
        f"Ablation: pivot strategies, perf={PERF.values}, N={N}, {TRIALS} trials",
        ["strategy", "S(max) mean", "S(max) worst"],
    )
    for name, mean, worst in rows:
        table.add_row(name, mean, worst)
    write_result("ablation_sampling", table.render())

    by = {name: mean for name, mean, _ in rows}
    # Default regular sampling is close to optimal (paper: few percent).
    assert by["regular sampling, c=4"] < 1.10
    # Oversampling the grid helps monotonically from c=1 to c=4.
    assert by["regular sampling, c=4"] <= by["regular sampling, c=1"]
    # Overpartitioning needs a large s to approach what regular sampling
    # achieves (the paper's argument against Li & Sevcik).
    assert by["overpartitioning, s=1"] > by["regular sampling, c=4"]
    assert by["overpartitioning, s=16"] <= by["overpartitioning, s=1"]
    # Exact quantiles are essentially perfect.
    assert by["exact quantiles (§3.2)"] < 1.01
    # The quicksort-based approach compounds per-level pivot errors.
    assert by["hyperquicksort (§6)"] > by["regular sampling, c=4"]


def test_pivot_cost_tradeoff(benchmark):
    """What the extra quality of exact quantiles costs in step-2 work."""
    from repro.cluster.machine import Cluster as _C, heterogeneous_cluster as _h
    from repro.core.external_psrs import PSRSConfig, sort_array

    n = PERF.nearest_exact(2**15)

    def run():
        rows = []
        for method in ("regular", "random", "quantile"):
            cluster = _C(_h([float(v) for v in PERF.values], memory_items=2048))
            res = sort_array(
                cluster,
                PERF,
                make_benchmark(0, n, seed=1),
                PSRSConfig(block_items=256, message_items=2048, pivot_method=method),
            )
            rows.append(
                (method, res.step_times["2:pivots"], res.s_max, res.elapsed)
            )
        return rows

    rows = once(benchmark, run)
    table = Table(
        f"Ablation: pivot method cost vs balance, perf={PERF.values}, N={n}",
        ["method", "step-2 time (s)", "S(max)", "total (s)"],
    )
    for method, t2, s_max, total in rows:
        table.add_row(method, t2, s_max, total)
    write_result("ablation_pivot_cost", table.render())

    by = {m: (t2, s, tot) for m, t2, s, tot in rows}
    # Quantile search buys near-perfect balance with a visibly pricier
    # step 2; at this scale the total can still come out ahead or close.
    assert by["quantile"][0] > 3 * by["regular"][0]
    assert by["quantile"][1] <= by["regular"][1]
