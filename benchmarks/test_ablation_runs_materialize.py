"""Two design-choice ablations of Algorithm 1's machinery.

1. Run-formation policy (step 1): memory-load sorting (the paper's
   bound) vs replacement selection — expected ~2x longer runs on random
   input, hence fewer runs, fewer polyphase phases, less merge I/O.
2. Step-3 sublist materialisation: the paper writes each partition to
   its own file (<= 2Q/B extra I/Os); a zero-copy variant hands item
   ranges of the sorted file straight to redistribution.
"""

from helpers import BLOCK_ITEMS, MEMORY_ITEMS, MESSAGE_ITEMS, N_TAPES, once, write_result

from repro.cluster.machine import Cluster, paper_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.extsort.polyphase import polyphase_sort
from repro.metrics.report import Table
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation

N = 2**16


def run_run_policies():
    rows = []
    for policy in ("load", "replacement"):
        disk = SimDisk(DiskParams(seek_time=5e-4, bandwidth=15e6))
        mem = MemoryManager(MEMORY_ITEMS)
        data = make_benchmark(0, N, seed=1)
        f = BlockFile(disk, BLOCK_ITEMS, data.dtype)
        with BlockWriter(f, mem) as w:
            w.write(data)
        base = disk.stats.snapshot()
        res = polyphase_sort(f, disk, mem, n_tapes=N_TAPES, run_policy=policy)
        verify_sorted_permutation(data, res.output.to_array())
        d = disk.stats - base
        rows.append((policy, res.n_initial_runs, res.n_phases, d.item_ios))
    return rows


def run_materialisation():
    rows = []
    perf = PerfVector([4, 4, 1, 1])
    n = perf.nearest_exact(N)
    data = make_benchmark(0, n, seed=1)
    for materialize in (True, False):
        cluster = Cluster(paper_cluster(memory_items=MEMORY_ITEMS))
        res = sort_array(
            cluster,
            perf,
            data,
            PSRSConfig(
                block_items=BLOCK_ITEMS,
                message_items=MESSAGE_ITEMS,
                n_tapes=N_TAPES,
                materialize_partitions=materialize,
            ),
        )
        verify_sorted_permutation(data, res.to_array())
        rows.append(
            (
                "materialised (paper)" if materialize else "zero-copy ranges",
                res.elapsed,
                res.io.item_ios,
                res.step_times["3:partition"],
            )
        )
    return rows


def test_run_formation_policy(benchmark):
    rows = once(benchmark, run_run_policies)

    table = Table(
        f"Ablation: run formation, N={N}, M={MEMORY_ITEMS}",
        ["policy", "initial runs", "phases", "item I/Os"],
    )
    for policy, runs, phases, items in rows:
        table.add_row(policy, runs, phases, items)
    write_result("ablation_runs", table.render())

    by = {p: (runs, phases, items) for p, runs, phases, items in rows}
    # Replacement selection: ~2x longer runs on random input (Knuth).
    assert by["replacement"][0] < 0.7 * by["load"][0]
    # Fewer runs -> no more phases, never more merge I/O by much.
    assert by["replacement"][1] <= by["load"][1]
    assert by["replacement"][2] < 1.1 * by["load"][2]


def test_partition_materialisation(benchmark):
    rows = once(benchmark, run_materialisation)

    table = Table(
        f"Ablation: step-3 sublist materialisation, perf={{4,4,1,1}}, N~{N}",
        ["variant", "Exe Time (s)", "item I/Os", "step-3 time (s)"],
    )
    for name, t, items, t3 in rows:
        table.add_row(name, t, items, t3)
    write_result("ablation_materialize", table.render())

    by = {name: (t, items, t3) for name, t, items, t3 in rows}
    mat, zero = by["materialised (paper)"], by["zero-copy ranges"]
    # Zero-copy skips a full read+write of every portion.
    assert zero[1] < mat[1]
    assert zero[0] < mat[0]
    assert zero[2] < mat[2]
