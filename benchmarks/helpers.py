"""Shared scale constants and reporting helpers for the bench suite.

The paper runs at N = 2^21..2^25 items with ~1999 hardware.  The bench
suite reproduces every table at a 1/128 *scale model*: N, M and the
message sizes shrink together, so every regime the paper measures
(I/O-bound local sorts, latency-bound tiny messages, communication-light
redistribution) is preserved while the whole suite runs in seconds.
Simulated times are therefore comparable in *shape*, not in absolute
seconds — EXPERIMENTS.md records both sides.
"""

from __future__ import annotations

import os

#: Scale factor relative to the paper's N = 2^24 headline experiment.
SCALE = 128

#: Table 3's input size 2^24, scaled: 2^17.
N_TABLE3 = 2**24 // SCALE

#: Table 2's size grid 2^21..2^25, scaled: 2^14..2^18.
TABLE2_SIZES = [2**21 // SCALE, 2**22 // SCALE, 2**23 // SCALE, 2**24 // SCALE, 2**25 // SCALE]

#: Per-node memory budget (items).  Chosen so the headline size is
#: deeply out of core (N/M = 64), matching the paper's merge-pass depth —
#: shallower budgets flatten the sequential baseline and understate the
#: parallel gains.
MEMORY_ITEMS = 2048

#: PDM block size in items (1 KiB blocks of uint32).
BLOCK_ITEMS = 256

#: The paper's best message size: 8K integers (32 Kb).
MESSAGE_ITEMS = 8192

#: Polyphase file count used by Table 3 ("15 intermediate files").
# Capped by m = MEMORY_ITEMS/BLOCK_ITEMS = 8 here, the scaled analogue.
N_TAPES = 8


def write_result(name: str, text: str) -> None:
    """Print a regenerated table and persist it under benchmarks/results/."""
    results = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results, exist_ok=True)
    path = os.path.join(results, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def record_with_guard(path: str, summary: dict, regression_factor: float = 1.2) -> dict:
    """Fold one CLI JSON summary into the keyed artifact, guarding perf.

    Tracks the best (smallest) simulated ``elapsed_seconds`` ever
    recorded for the configuration in a ``best_elapsed_seconds`` field —
    together with that run's per-step times as ``best_step_seconds``, so
    ``repro bench report`` can blame the step that moved — and raises
    when a new run regresses more than ``regression_factor`` over it.
    A model change that slows a pinned configuration by >20% must be a
    conscious edit of ``BENCH_sort.json``, not silent drift.  Returns
    the written document.
    """
    from repro.metrics.bench import append_run, get_run, load_bench, run_key

    key = run_key(summary)
    elapsed = float(summary["elapsed_seconds"])
    best = elapsed
    best_steps = dict(summary.get("step_seconds", {}))
    prior = get_run(load_bench(path), key)
    if prior is not None:
        prior_best = float(
            prior.get("best_elapsed_seconds", prior.get("elapsed_seconds", elapsed))
        )
        if prior_best <= elapsed:
            best = prior_best
            best_steps = dict(
                prior.get("best_step_seconds", prior.get("step_seconds", best_steps))
            )
        if elapsed > regression_factor * prior_best:
            raise AssertionError(
                f"{key}: elapsed {elapsed:.3f}s regressed more than "
                f"{regression_factor:g}x over best recorded {prior_best:.3f}s"
            )
    return append_run(
        path,
        {**summary, "best_elapsed_seconds": best, "best_step_seconds": best_steps},
    )
