"""Validates Theorem 1 (Eq. 1): Sort(N) = Theta((n/D) log_m n) block I/Os.

Measures the polyphase engine's block-I/O counters over an N sweep and
checks them against the theoretical curve and the paper's step-1 bound
``2 l (1 + ceil(log_m l))`` item I/Os.  The paper remarks that in
practice the ``log_m n`` term is a small constant — visible in the
near-linear measured column.
"""

from helpers import BLOCK_ITEMS, MEMORY_ITEMS, N_TAPES, once, write_result

from repro.extsort.polyphase import polyphase_sort
from repro.metrics.report import Table
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager
from repro.pdm.model import PDMConfig
from repro.workloads.generators import make_benchmark

SIZES = [2**13, 2**14, 2**15, 2**16, 2**17, 2**18]


def sort_once(n: int):
    disk = SimDisk(DiskParams(seek_time=5e-4, bandwidth=15e6))
    mem = MemoryManager(MEMORY_ITEMS)
    data = make_benchmark(0, n, seed=0)
    f = BlockFile(disk, BLOCK_ITEMS, data.dtype)
    with BlockWriter(f, mem) as w:
        w.write(data)
    base = disk.stats.snapshot()
    res = polyphase_sort(f, disk, mem, n_tapes=N_TAPES)
    delta = disk.stats - base
    return res, delta


def run_sweep():
    rows = []
    for n in SIZES:
        res, delta = sort_once(n)
        cfg = PDMConfig(N=n, M=MEMORY_ITEMS, B=BLOCK_ITEMS)
        rows.append(
            {
                "n": n,
                "blocks": delta.block_ios,
                "items": delta.item_ios,
                "theory_blocks": cfg.sort_io_bound(),
                "step1_bound_items": cfg.step1_io_bound(n),
                "phases": res.n_phases,
                "runs": res.n_initial_runs,
            }
        )
    return rows


def test_io_complexity_matches_theorem(benchmark):
    rows = once(benchmark, run_sweep)

    table = Table(
        f"Theorem 1 check: polyphase block I/Os vs (n/D) log_m n "
        f"(M={MEMORY_ITEMS}, B={BLOCK_ITEMS}, D=1)",
        ["N", "runs", "phases", "blocks", "theory", "ratio", "items", "2N(1+log)"],
    )
    for r in rows:
        table.add_row(
            r["n"],
            r["runs"],
            r["phases"],
            r["blocks"],
            r["theory_blocks"],
            r["blocks"] / max(r["theory_blocks"], 1),
            r["items"],
            r["step1_bound_items"],
        )
    note = (
        "\nNote: at run counts far from a perfect Fibonacci distribution the\n"
        "dummy-run padding makes polyphase exceed the idealised\n"
        "2N(1+ceil(log_m N)) by a few percent (Knuth 5.4.2 discusses exactly\n"
        "this); the Theta bound itself always holds."
    )
    write_result("io_complexity", table.render() + note)

    for r in rows:
        # Within a small constant of the Theta bound (both directions).
        ratio = r["blocks"] / max(r["theory_blocks"], 1.0)
        assert 0.5 < ratio < 8.0
        # Within dummy-run slack of the paper's explicit step-1 item bound.
        assert r["items"] <= 1.3 * r["step1_bound_items"]
    # Growth is near-linear in N (log_m n term is a small constant).
    doubling = [rows[i + 1]["blocks"] / rows[i]["blocks"] for i in range(len(rows) - 1)]
    assert all(1.7 < d < 3.0 for d in doubling)
