"""Ablation (paper §2/§4): choice of the sequential external engine.

The paper picks polyphase merge sort for steps 1/5 because it "matches
the bound on sequential sorting" without a redistribution pass.  This
bench compares the three engines this library implements on identical
inputs: polyphase, balanced k-way merge, and distribution sort.
"""

from helpers import BLOCK_ITEMS, MEMORY_ITEMS, N_TAPES, once, write_result

from repro.extsort.balanced import balanced_merge_sort
from repro.extsort.distribution import distribution_sort
from repro.extsort.polyphase import polyphase_sort
from repro.metrics.report import Table
from repro.pdm.blockfile import BlockFile, BlockWriter
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.memory import MemoryManager
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation

N = 2**17


def _fresh(seed=0):
    disk = SimDisk(DiskParams(seek_time=5e-4, bandwidth=15e6))
    mem = MemoryManager(MEMORY_ITEMS)
    data = make_benchmark(0, N, seed=seed)
    f = BlockFile(disk, BLOCK_ITEMS, data.dtype)
    with BlockWriter(f, mem) as w:
        w.write(data)
    base = disk.stats.snapshot()
    return disk, mem, f, data, base


def run_engines():
    rows = []

    disk, mem, f, data, base = _fresh()
    res = polyphase_sort(f, disk, mem, n_tapes=N_TAPES)
    verify_sorted_permutation(data, res.output.to_array())
    d = disk.stats - base
    rows.append(("polyphase (T=8)", d.item_ios, d.block_ios, d.busy_time))

    disk, mem, f, data, base = _fresh()
    res = balanced_merge_sort(f, disk, mem, merge_order=N_TAPES - 1)
    verify_sorted_permutation(data, res.output.to_array())
    d = disk.stats - base
    rows.append(("balanced k-way (k=7)", d.item_ios, d.block_ios, d.busy_time))

    disk, mem, f, data, base = _fresh()
    res = distribution_sort(f, disk, mem)
    verify_sorted_permutation(data, res.output.to_array())
    d = disk.stats - base
    rows.append(("distribution (S=6)", d.item_ios, d.block_ios, d.busy_time))

    return rows


def test_sequential_engine_ablation(benchmark):
    rows = once(benchmark, run_engines)

    table = Table(
        f"Ablation: sequential external engines, N={N}, M={MEMORY_ITEMS}, B={BLOCK_ITEMS}",
        ["engine", "item I/Os", "block I/Os", "disk time (s)"],
    )
    for name, items, blocks, busy in rows:
        table.add_row(name, items, blocks, busy)
    write_result("ablation_seqsort", table.render())

    by = {name: items for name, items, _, _ in rows}
    # Polyphase does fewer item I/Os than the balanced sort of the same
    # arity — the reason the paper chose it.
    assert by["polyphase (T=8)"] < by["balanced k-way (k=7)"]
    # All engines stay within a small factor of each other (same Theta).
    worst, best = max(by.values()), min(by.values())
    assert worst < 2.5 * best
