"""Regenerates paper Table 3: external PSRS on the loaded 4-node cluster.

Paper (N = 2^24, message 32 Kb, 15 intermediate files, 30 experiments):

    perf {1,1,1,1} / Fast-Ethernet: 303.94 s   S(max) = 1.00273
    perf {1,1,4,4} / Fast-Ethernet: 155.41 s   S(max) = 1.094
    perf {1,1,4,4} / Myrinet:       155.43 s   S(max) = 1.093

Expected shape: the hetero-aware vector ~2x faster than treating the
cluster as homogeneous; Myrinet indistinguishable from Fast-Ethernet;
S(max) close to 1 everywhere; gains vs the sequential baselines ~1.4x
(fastest node) and ~6x (slowest node).
"""

import numpy as np
from helpers import (
    BLOCK_ITEMS,
    MEMORY_ITEMS,
    MESSAGE_ITEMS,
    N_TABLE3,
    N_TAPES,
    once,
    write_result,
)

from repro.cluster.machine import Cluster, paper_cluster
from repro.cluster.network import FAST_ETHERNET, MYRINET
from repro.core.calibration import calibrate
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.metrics.report import Table
from repro.metrics.timing import TrialStats
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation

TRIALS = 5  # paper: 30; the simulation's data-dependent spread is tiny

CONFIGS = [
    ("{1,1,1,1}; Fast-Ethernet", PerfVector([1, 1, 1, 1]), FAST_ETHERNET),
    ("{4,4,1,1}; Fast-Ethernet", PerfVector([4, 4, 1, 1]), FAST_ETHERNET),
    ("{4,4,1,1}; Myrinet", PerfVector([4, 4, 1, 1]), MYRINET),
]


def run_config(perf: PerfVector, link):
    times, results = [], []
    n = perf.nearest_exact(N_TABLE3)
    cfg = PSRSConfig(
        block_items=BLOCK_ITEMS, message_items=MESSAGE_ITEMS, n_tapes=N_TAPES
    )
    for seed in range(TRIALS):
        data = make_benchmark(0, n, seed=seed)
        cluster = Cluster(paper_cluster(memory_items=MEMORY_ITEMS, link=link))
        res = sort_array(cluster, perf, data, cfg)
        verify_sorted_permutation(data, res.to_array())
        times.append(res.elapsed)
        results.append(res)
    return TrialStats(tuple(times)), results


def run_table3():
    out = {}
    for label, perf, link in CONFIGS:
        out[label] = run_config(perf, link)
    # Sequential baselines for the paper's gain comparisons.
    cal = calibrate(
        paper_cluster(memory_items=MEMORY_ITEMS),
        4 * N_TABLE3,  # so each node sorts the full N_TABLE3... see below
        block_items=BLOCK_ITEMS,
        n_tapes=N_TAPES,
    )
    return out, cal


def test_table3_parallel_sort(benchmark):
    out, cal = once(benchmark, run_table3)

    table = Table(
        f"Table 3 (scaled 1/128): external PSRS, N~{N_TABLE3}, "
        f"message {MESSAGE_ITEMS} ints, {N_TAPES} files, {TRIALS} trials",
        ["Input Size", "Exe Time (s)", "Deviation", "Mean", "Max", "S(max)"],
    )
    from repro.metrics.expansion import partition_stats

    for label, (stats, results) in out.items():
        r0 = results[0]
        table.add_section(f"Performance : {label}")
        # Paper semantics: in the heterogeneous rows, 'Mean' and 'S(max)'
        # are reported for the fastest processors.
        pstats = [
            partition_stats(r.received_sizes, r.perf, r.n_items) for r in results
        ]
        mean_partition = float(np.mean([s.mean_fastest for s in pstats]))
        max_partition = max(s.max for s in pstats)
        s_max = float(np.mean([r.s_max for r in results]))
        table.add_row(r0.n_items, stats.mean, stats.std, mean_partition, max_partition, s_max)

    t_hom = out["{1,1,1,1}; Fast-Ethernet"][0].mean
    t_het = out["{4,4,1,1}; Fast-Ethernet"][0].mean
    t_myr = out["{4,4,1,1}; Myrinet"][0].mean
    seq_fast, seq_slow = cal.times[0], cal.times[2]
    summary = (
        f"\nComparisons (paper values in parentheses):\n"
        f"  homogeneous/hetero-aware time ratio: {t_hom / t_het:.2f}x   (1.96x)\n"
        f"  Myrinet/Fast-Ethernet time ratio:    {t_myr / t_het:.3f}    (1.000)\n"
        f"  gain vs fastest sequential node:     {seq_fast / t_het:.2f}x  (1.37x)\n"
        f"  gain vs slowest sequential node:     {seq_slow / t_het:.2f}x  (6.13x)\n"
        f"  homogeneous-config gain vs fastest:  {seq_fast / t_hom:.2f}x\n"
        f"  homogeneous-config gain vs slowest:  {seq_slow / t_hom:.2f}x (3x)\n"
    )
    write_result("table3_parallel", table.render() + summary)

    # --- Shape assertions against the paper ------------------------------
    assert 1.5 < t_hom / t_het < 3.0  # paper: 1.96x
    assert 0.9 < t_myr / t_het <= 1.01  # paper: equal times
    s_hom = float(np.mean([r.s_max for r in out["{1,1,1,1}; Fast-Ethernet"][1]]))
    s_het = float(np.mean([r.s_max for r in out["{4,4,1,1}; Fast-Ethernet"][1]]))
    assert s_hom < 1.05  # paper: 1.00273
    assert s_het < 1.15  # paper: 1.094
    assert seq_slow / t_het > 3.0  # paper: 6.13x (hetero beats slowest node big)
    assert seq_fast / t_het > 1.0  # paper: 1.37x (and still beats the fastest)
