"""Ablation (paper §5): what using the wrong perf vector costs.

Table 3's homogeneous row IS this ablation at one point ({1,1,1,1} on
the loaded cluster).  This bench sweeps more mis-specifications,
including over-correction, and checks the theory module's predicted
waste factor total/(p*min) against the measured slowdown.
"""

from helpers import BLOCK_ITEMS, MEMORY_ITEMS, MESSAGE_ITEMS, N_TAPES, once, write_result

from repro.cluster.machine import Cluster, paper_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.core.theory import homogeneous_waste_factor
from repro.metrics.report import Table
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation

N = 2**16
VECTORS = [
    ("true {4,4,1,1}", [4, 4, 1, 1]),
    ("homogeneous {1,1,1,1}", [1, 1, 1, 1]),
    ("under-corrected {2,2,1,1}", [2, 2, 1, 1]),
    ("over-corrected {8,8,1,1}", [8, 8, 1, 1]),
    ("inverted {1,1,4,4}", [1, 1, 4, 4]),
]


def run_vectors():
    rows = []
    for label, vals in VECTORS:
        perf = PerfVector(vals)
        n = perf.nearest_exact(N)
        data = make_benchmark(0, n, seed=2)
        # Lockstep: the paper's waste-factor contrast is a barrier-to-
        # barrier claim; the event kernel hides part of the imbalance.
        cluster = Cluster(paper_cluster(memory_items=MEMORY_ITEMS), kernel="lockstep")
        res = sort_array(
            cluster,
            perf,
            data,
            PSRSConfig(
                block_items=BLOCK_ITEMS, message_items=MESSAGE_ITEMS, n_tapes=N_TAPES
            ),
        )
        verify_sorted_permutation(data, res.to_array())
        rows.append((label, res.elapsed, res.s_max))
    return rows


def test_perf_vector_misspecification(benchmark):
    rows = once(benchmark, run_vectors)

    t_true = rows[0][1]
    table = Table(
        f"Ablation: perf-vector misspecification on the loaded cluster, N~{N}",
        ["perf vector", "Exe Time (s)", "S(max)", "slowdown vs true"],
    )
    for label, t, s in rows:
        table.add_row(label, t, s, f"{t / t_true:.2f}x")
    predicted = homogeneous_waste_factor(PerfVector([4, 4, 1, 1]))
    summary = (
        f"\nPredicted homogeneous waste total/(p*min) = {predicted:.2f}x; "
        f"constant per-step offsets dampen the measured ratio (paper "
        f"measured 1.96x)."
    )
    write_result("ablation_perf_vector", table.render() + summary)

    by = {label: t for label, t, _ in rows}
    # The true vector wins against every misspecification.
    for label, t, _ in rows[1:]:
        assert t >= 0.98 * t_true, label
    # Homogeneous costs ~2x (paper's Table 3 contrast).
    assert 1.5 < by["homogeneous {1,1,1,1}"] / t_true < predicted + 0.6
    # Inverting the vector (feeding the loaded nodes MORE data) is the
    # worst of all.
    assert by["inverted {1,1,4,4}"] == max(by.values())
