"""Regenerates paper Table 2: sequential external sort per node.

Paper: polyphase merge sort of 2^21..2^25 integers on each of the four
nodes (two loaded ~4x); the time ratios fill the perf array {4,4,1,1}
(the paper writes it {1,1,4,4} with the loaded pair first).  Expected
shape: loaded nodes ~4x slower at every size, ratio stable, calibration
recovers the vector.
"""

from helpers import BLOCK_ITEMS, MEMORY_ITEMS, N_TAPES, TABLE2_SIZES, once, write_result

from repro.cluster.machine import paper_cluster
from repro.core.calibration import calibrate, sequential_sort_table
from repro.metrics.report import Table


def run_table2():
    spec = paper_cluster(memory_items=MEMORY_ITEMS)
    rows = sequential_sort_table(
        spec,
        sizes=TABLE2_SIZES,
        repeats=3,
        block_items=BLOCK_ITEMS,
        n_tapes=N_TAPES,
    )
    cal = calibrate(
        spec, 4 * TABLE2_SIZES[2], block_items=BLOCK_ITEMS, n_tapes=N_TAPES
    )
    return rows, cal


def render_table1() -> str:
    """Paper Table 1: the cluster configuration inventory."""
    spec = paper_cluster(memory_items=MEMORY_ITEMS)
    t = Table(
        "Table 1: configuration — 4x Alpha 21164 EV56 533 MHz, Fast-Ethernet",
        ["Node", "rel. speed", "disk seek (ms)", "disk BW (MB/s)", "loaded"],
    )
    for ns in spec.nodes:
        t.add_row(
            ns.name,
            ns.speed,
            ns.disk.seek_time * 1e3,
            ns.disk.bandwidth / 1e6,
            "yes (forked spinners)" if ns.speed < 1 else "no",
        )
    return t.render()


def test_table2_sequential_sort(benchmark):
    rows, cal = once(benchmark, run_table2)

    table1 = render_table1()
    table = Table(
        "Table 2 (scaled 1/128): sequential external sorting per node",
        ["Node", "Input size", "Exe. Time (s)", "Deviation"],
    )
    node_order = []
    for r in rows:
        if r.node not in node_order:
            node_order.append(r.node)
    for node in node_order:
        table.add_section(node)
        for r in rows:
            if r.node == node:
                table.add_row("", r.n_items, r.stats.mean, r.stats.std)

    by = {(r.node, r.n_items): r.stats.mean for r in rows}
    top = TABLE2_SIZES[-1]
    ratio_s = by[("siegrune", top)] / by[("helmvige", top)]
    ratio_r = by[("rossweisse", top)] / by[("grimgerde", top)]
    summary = (
        f"\nConclusion (paper: 'helmvige and grimgerde are 4 times faster'):\n"
        f"  siegrune/helmvige time ratio at N={top}:   {ratio_s:.2f}x\n"
        f"  rossweisse/grimgerde time ratio at N={top}: {ratio_r:.2f}x\n"
        f"  calibrated perf vector: {cal.perf.values} "
        f"(paper: {{1,1,4,4}} == {{4,4,1,1}} in Table-2 host order)"
    )
    write_result("table2_sequential", table1 + "\n\n" + table.render() + summary)

    # Shape assertions: the loaded pair is ~4x slower, stably across sizes.
    assert 3.0 < ratio_s < 5.0
    assert 3.0 < ratio_r < 5.0
    assert cal.perf.values == [4, 4, 1, 1]
    for node in node_order:
        times = [by[(node, n)] for n in TABLE2_SIZES]
        assert times == sorted(times)  # monotone in N
