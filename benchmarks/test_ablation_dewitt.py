"""Ablation (§2): external PSRS vs DeWitt probabilistic splitting.

The paper names DeWitt et al.'s randomized two-step distribution sort
the closest prior art.  This bench runs both end to end on the loaded
cluster and exposes the structural trade:

* DeWitt skips the local pre-sort, so at generous message sizes it moves
  fewer items in total;
* but each arriving message becomes one *small sorted run*, so shrinking
  the message size multiplies the final merge's runs (and passes), while
  PSRS's step 5 always merges exactly p long runs;
* and its random splitters balance looser than regular sampling,
  seed for seed.
"""

import numpy as np
from helpers import BLOCK_ITEMS, MEMORY_ITEMS, N_TAPES, once, write_result

from repro.cluster.machine import Cluster, paper_cluster
from repro.core.dewitt import DeWittConfig, sort_array_dewitt
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.metrics.report import Table
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation

PERF = PerfVector([4, 4, 1, 1])
N = PERF.nearest_exact(2**16)
# The per-destination buffer is memory-capped at (M - 2B)/p = 384 items,
# so the sweep explores below that cap (the top entry saturates it).
MESSAGES = [32, 128, 2048]
TRIALS = 3


def run_comparison():
    rows = []
    data_by_seed = {s: make_benchmark(0, N, seed=s) for s in range(TRIALS)}

    for msg in MESSAGES:
        dw_t, dw_smax, dw_io, dw_runs = [], [], [], []
        ps_t, ps_smax, ps_io = [], [], []
        for s in range(TRIALS):
            data = data_by_seed[s]
            c1 = Cluster(paper_cluster(memory_items=MEMORY_ITEMS))
            dw = sort_array_dewitt(
                c1, PERF, data,
                DeWittConfig(block_items=BLOCK_ITEMS, message_items=msg, seed=s),
            )
            verify_sorted_permutation(data, dw.to_array())
            dw_t.append(dw.elapsed)
            dw_smax.append(dw.s_max)
            dw_io.append(dw.io.item_ios)
            dw_runs.append(max(dw.runs_per_node))

            c2 = Cluster(paper_cluster(memory_items=MEMORY_ITEMS))
            ps = sort_array(
                c2, PERF, data,
                PSRSConfig(
                    block_items=BLOCK_ITEMS, message_items=msg, n_tapes=N_TAPES
                ),
            )
            ps_t.append(ps.elapsed)
            ps_smax.append(ps.s_max)
            ps_io.append(ps.io.item_ios)
        rows.append(
            {
                "msg": msg,
                "dw": (np.mean(dw_t), np.mean(dw_smax), np.mean(dw_io), max(dw_runs)),
                "ps": (np.mean(ps_t), np.mean(ps_smax), np.mean(ps_io)),
            }
        )
    return rows


def test_dewitt_vs_psrs(benchmark):
    rows = once(benchmark, run_comparison)

    table = Table(
        f"Ablation: DeWitt probabilistic splitting vs external PSRS, "
        f"perf={PERF.values}, N={N}",
        ["msg (ints)", "algo", "Exe Time (s)", "S(max)", "item I/Os", "max runs"],
    )
    for r in rows:
        t, s, io, runs = r["dw"]
        table.add_row(r["msg"], "DeWitt", t, s, int(io), runs)
        t, s, io = r["ps"]
        table.add_row(r["msg"], "ext. PSRS", t, s, int(io), "p=4")
    write_result("ablation_dewitt", table.render())

    by_msg = {r["msg"]: r for r in rows}
    # DeWitt's run count explodes as messages shrink; PSRS is invariant.
    # (flushes happen at block granularity, so the growth saturates at
    # roughly one run per incoming block rather than scaling 1/msg)
    assert by_msg[32]["dw"][3] > 3 * by_msg[2048]["dw"][3]
    # PSRS balances tighter at every message size (regular vs random).
    for r in rows:
        assert r["ps"][1] <= r["dw"][1] + 0.05
    # At the friendliest message size DeWitt's skipped pre-sort shows up
    # as lower total item I/O...
    assert by_msg[2048]["dw"][2] < by_msg[2048]["ps"][2]
    # ...but the advantage erodes as the multiplied runs add merge
    # passes (PSRS's I/O is message-size invariant).
    gap_large = by_msg[2048]["ps"][2] / by_msg[2048]["dw"][2]
    gap_small = by_msg[32]["ps"][2] / by_msg[32]["dw"][2]
    assert gap_small < gap_large
