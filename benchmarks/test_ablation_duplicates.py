"""Ablation (paper §3.1): the effect of duplicate keys on load balance.

The paper: duplicates raise the load-balance upper bound from U = 2n/p
to U + d (d = multiplicity of the most duplicated key) and "in practice
it is not a concern" — except in the degenerate all-equal case, where a
single key carries the whole input to one node.
"""

import numpy as np
from helpers import BLOCK_ITEMS, MEMORY_ITEMS, once, write_result

from repro.cluster.machine import Cluster, heterogeneous_cluster
from repro.core.external_psrs import PSRSConfig, sort_array
from repro.core.perf import PerfVector
from repro.core.theory import load_balance_bound, max_duplicate_count
from repro.metrics.report import Table
from repro.workloads.generators import make_benchmark
from repro.workloads.records import verify_sorted_permutation

PERF = PerfVector([1, 1, 4, 4])
N = PERF.nearest_exact(2**15)
WORKLOADS = ["uniform", "gaussian", "zipf", "all_equal", "staggered"]


def run_duplicates():
    rows = []
    for name in WORKLOADS:
        data = make_benchmark(name, N, seed=3)
        cluster = Cluster(
            heterogeneous_cluster(
                [float(v) for v in PERF.values], memory_items=MEMORY_ITEMS
            )
        )
        res = sort_array(
            cluster, PERF, data, PSRSConfig(block_items=BLOCK_ITEMS, message_items=2048)
        )
        verify_sorted_permutation(data, res.to_array())
        d = max_duplicate_count(data)
        bound_ok = all(
            res.received_sizes[i]
            <= load_balance_bound(res.n_items, PERF, i, d) + PERF.p
            for i in range(PERF.p)
        )
        rows.append((name, d, res.s_max, bound_ok))
    return rows


def test_duplicates_effect(benchmark):
    rows = once(benchmark, run_duplicates)

    table = Table(
        f"Ablation: duplicates, perf={PERF.values}, N={N}",
        ["workload", "max duplicate d", "S(max)", "U+d bound holds"],
    )
    for name, d, s_max, ok in rows:
        table.add_row(name, d, s_max, ok)
    write_result("ablation_duplicates", table.render())

    by = {name: (d, s_max, ok) for name, d, s_max, ok in rows}
    # The theorem's U + d bound holds on every workload.
    assert all(ok for _, _, _, ok in rows)
    # Moderate duplicates are "not a concern" (paper's phrase).
    assert by["uniform"][1] < 1.12
    assert by["gaussian"][1] < 1.15
    # Zipf's heaviest key (d ~ N/4) can legitimately inflate one node by
    # up to d items — the linear U+d growth the paper describes.
    assert by["zipf"][1] < 2.5
    # The degenerate all-equal input sends everything to one node — the
    # d term in U + d is the whole input.
    assert by["all_equal"][0] == N
    assert by["all_equal"][1] > 2.0
