"""Validates the two PDM organisations of the paper's Figure 1.

(a) P = 1 with D disks striped: one parallel I/O moves D blocks, so the
    elapsed time of streaming N items scales as ~1/D while the block-I/O
    *count* (the PDM complexity measure) is unchanged.
(b) P = D, one disk per processor used independently — the organisation
    the paper's cluster realises; per-node counters match the single
    disk's share.
"""

import numpy as np
from helpers import once, write_result

from repro.cluster.machine import Cluster, homogeneous_cluster
from repro.metrics.report import Table
from repro.pdm.disk import DiskParams, SimDisk
from repro.pdm.striping import StripedFile
from repro.workloads.generators import make_benchmark

N = 2**15
B = 256
DISK = DiskParams(seek_time=5e-4, bandwidth=15e6)


def stream_striped(D: int):
    """Write then read N items through a D-disk striped file."""
    disks = [SimDisk(DISK, name=f"d{i}") for i in range(D)]
    sf = StripedFile(disks, B=B)
    data = make_benchmark(0, N, seed=0)
    blocks = [data[i : i + B] for i in range(0, N, B)]
    t_write = 0.0
    for i in range(0, len(blocks), D):
        t_write += sf.append_stripe(blocks[i : i + D])
    t_read = sum(t for _, t in sf.iter_stripes())
    stats = sf.stats()
    return t_write + t_read, stats.block_ios


def run_fig1():
    rows = []
    for D in (1, 2, 4, 8):
        elapsed, block_ios = stream_striped(D)
        rows.append((D, elapsed, block_ios))
    return rows


def test_fig1_pdm_regimes(benchmark):
    rows = once(benchmark, run_fig1)

    table = Table(
        f"Figure 1 (a): P=1 with D striped disks, streaming N={N} items",
        ["D", "Elapsed (s)", "Block I/Os", "Speedup vs D=1"],
    )
    base = rows[0][1]
    for D, elapsed, ios in rows:
        table.add_row(D, elapsed, ios, f"{base / elapsed:.2f}x")
    summary = (
        "\nThe block-I/O count (PDM cost) is invariant in D; elapsed time "
        "scales ~1/D.\nOrganisation (b) (P=D, independent disks) is what "
        "every cluster bench in this suite uses."
    )
    write_result("fig1_pdm_regimes", table.render() + summary)

    # Counts invariant, time ~1/D.
    assert len({ios for _, _, ios in rows}) == 1
    for D, elapsed, _ in rows:
        assert base / elapsed == pytest.approx(D, rel=0.05)


def test_fig1_organisation_b_independent_disks(benchmark):
    """P=D: per-node disks carry equal, independent load."""

    def run():
        cluster = Cluster(homogeneous_cluster(4))
        data = make_benchmark(0, N, seed=1)
        per = N // 4
        for i, node in enumerate(cluster.nodes):
            from repro.pdm.blockfile import BlockFile, BlockWriter

            f = BlockFile(node.disk, B, data.dtype)
            with BlockWriter(f, node.mem) as w:
                w.write(data[i * per : (i + 1) * per])
        return cluster

    cluster = once(benchmark, run)
    writes = [n.disk.stats.blocks_written for n in cluster.nodes]
    assert len(set(writes)) == 1  # perfectly even
    # Independent disks: elapsed ~= one node's time, not the sum.
    assert cluster.elapsed() < 1.05 * sum(
        n.disk.stats.busy_time for n in cluster.nodes
    ) / 4 + 1e-9


def test_fig1_d_disks_through_full_sort(benchmark):
    """Theorem 1's n/D end to end: the whole of Algorithm 1 on clusters
    whose nodes have D independent drives each."""
    from repro.cluster.machine import Cluster, ClusterSpec, NodeSpec
    from repro.core.external_psrs import PSRSConfig, sort_array
    from repro.core.perf import PerfVector
    from repro.metrics.report import Table
    from repro.workloads.records import verify_sorted_permutation

    perf = PerfVector([1, 1])
    n = perf.nearest_exact(2**15)
    data = make_benchmark(0, n, seed=2)

    def run():
        rows = []
        for D in (1, 2, 4):
            spec = ClusterSpec(
                nodes=tuple(
                    NodeSpec(name=f"n{i}", memory_items=2048, n_disks=D)
                    for i in range(2)
                )
            )
            cluster = Cluster(spec)
            res = sort_array(
                cluster, perf, data, PSRSConfig(block_items=256, message_items=8192)
            )
            verify_sorted_permutation(data, res.to_array())
            rows.append((D, res.elapsed, res.io.block_ios))
        return rows

    rows = once(benchmark, run)
    table = Table(
        f"Algorithm 1 with D disks per node, N={n}",
        ["D", "Exe Time (s)", "Block I/Os", "speedup vs D=1"],
    )
    base = rows[0][1]
    for D, t, ios in rows:
        table.add_row(D, t, ios, f"{base / t:.2f}x")
    write_result("fig1_d_disks_full_sort", table.render())

    # Block-I/O counts identical; elapsed shrinks with D (diluted by
    # CPU/network shares of the pipeline).
    assert len({ios for _, _, ios in rows}) == 1
    assert rows[1][1] < rows[0][1]
    assert rows[2][1] < rows[1][1]
    assert base / rows[2][1] > 2.0  # D=4 at least halves twice-ish


import pytest  # noqa: E402  (used in assertions above)
