"""Legacy shim so editable installs work without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on minimal/offline environments
whose setuptools lacks bdist_wheel.
"""

from setuptools import setup

setup()
